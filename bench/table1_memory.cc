// Reproduces Table 1: memory consumption of graph topology, vertex data and
// intermediate data for 3-layer full-graph GCN training on the three
// billion-scale graphs. Evaluated analytically at the PAPER's full-scale
// parameters (this is exactly how the table is computed: sizes, not runs).
//
// Paper reference values (GB): it-2004 12.8/177.2/108.3,
// ogbn-paper 18.0/519.4/425.3, friendster 28.9/293.3/179.3.
//
// A second, measured section exercises the arena-backed tensor pool
// (tensor/pool.h) on the Fig. 11 configuration (4 devices, default chunks,
// pipeline depth 3) and A/Bs pooled vs unpooled (the HONGTU_DISABLE_POOL
// path) epochs: wall-clock per steady epoch, peak live host tensor bytes,
// and heap-allocation counts. The pooled run must reach ZERO steady-state
// allocations; the result is recorded in BENCH_memory.json (override with
// --memory-report=path) and gated by ci/check_bench_regression.py --memory.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "hongtu/sim/memory_model.h"
#include "hongtu/tensor/pool.h"

using namespace hongtu;

namespace {

struct Row {
  const char* dataset;
  const char* config;
  MemoryModelInput in;
};

struct MemRow {
  std::string model;
  std::string dataset;
  int chunks = 0;
  bool ok = false;
  double pooled_wall_s = 0;    // mean steady-epoch wall-clock, pool on
  double unpooled_wall_s = 0;  // same with the pool disabled
  int64_t pooled_peak_bytes = 0;
  int64_t unpooled_peak_bytes = 0;
  int64_t epoch1_alloc_count = 0;  // pooled warmup epoch heap allocations
  int64_t steady_alloc_count = 0;  // pooled steady epochs (must be 0)
  int64_t unpooled_alloc_count = 0;  // per steady epoch without the pool
  int64_t steady_pool_hits = 0;
};

struct ModeResult {
  bool ok = false;
  double wall_s = 0;
  int64_t peak_bytes = 0;
  int64_t epoch1_allocs = 0;
  int64_t steady_allocs = 0;
  int64_t steady_hits = 0;
};

/// One warmup epoch + `epochs` measured epochs on the Fig. 11 configuration.
ModeResult RunMode(const Dataset& ds, const ModelConfig& cfg, int chunks,
                   bool pooled, int epochs) {
  TensorPool::Global().SetEnabled(pooled);
  ModeResult out;
  EngineConfig o;
  o.num_devices = 4;
  o.chunks_per_partition = chunks;
  o.device_capacity_bytes = 1ll << 40;
  o.executor = ExecutorKind::kPipeline;
  o.max_inflight = 3;
  auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, o);
  if (!e.ok()) {
    TensorPool::Global().SetEnabled(true);
    return out;
  }
  auto warm = e.ValueOrDie()->RunEpoch();
  if (!warm.ok()) {
    TensorPool::Global().SetEnabled(true);
    return out;
  }
  out.epoch1_allocs = warm.ValueOrDie().host_alloc_count;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    auto r = e.ValueOrDie()->RunEpoch();
    if (!r.ok()) {
      TensorPool::Global().SetEnabled(true);
      return out;
    }
    const EpochStats& st = r.ValueOrDie();
    out.wall_s += st.wall_seconds / epochs;
    out.peak_bytes = std::max(out.peak_bytes, st.host_peak_bytes);
    out.steady_allocs = std::max(out.steady_allocs, st.host_alloc_count);
    out.steady_hits = std::max(out.steady_hits, st.host_pool_hits);
  }
  out.ok = true;
  TensorPool::Global().SetEnabled(true);
  return out;
}

void WriteMemoryReport(const std::vector<MemRow>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "table1_memory: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"memory\",\n  \"scale\": %g,\n",
               benchutil::Scale());
  std::fprintf(f, "  \"devices\": 4,\n  \"pipeline_depth\": 3,\n");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const MemRow& r = rows[i];
    const char* sep = i + 1 < rows.size() ? "," : "";
    if (!r.ok) {
      std::fprintf(f,
                   "    {\"config\": \"%s_%s\", \"error\": \"run failed\"}%s\n",
                   r.model.c_str(), r.dataset.c_str(), sep);
      continue;
    }
    std::fprintf(
        f,
        "    {\"config\": \"%s_%s\", \"chunks\": %d, "
        "\"pooled_wall_s\": %.6g, \"unpooled_wall_s\": %.6g, "
        "\"wall_speedup\": %.4g, \"pooled_peak_host_bytes\": %lld, "
        "\"unpooled_peak_host_bytes\": %lld, \"epoch1_alloc_count\": %lld, "
        "\"steady_alloc_count\": %lld, \"unpooled_alloc_count\": %lld, "
        "\"steady_pool_hits\": %lld}%s\n",
        r.model.c_str(), r.dataset.c_str(), r.chunks, r.pooled_wall_s,
        r.unpooled_wall_s, r.unpooled_wall_s / r.pooled_wall_s,
        static_cast<long long>(r.pooled_peak_bytes),
        static_cast<long long>(r.unpooled_peak_bytes),
        static_cast<long long>(r.epoch1_alloc_count),
        static_cast<long long>(r.steady_alloc_count),
        static_cast<long long>(r.unpooled_alloc_count),
        static_cast<long long>(r.steady_pool_hits), sep);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* report_path = "BENCH_memory.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--memory-report=", 16) == 0) {
      report_path = argv[i] + 16;
    }
  }

  const std::vector<Row> rows = {
      {"it-2004", "256-128-128-64",
       {41000000, 1200000000, {256, 128, 128, 64}, ModelKind::kGcn}},
      {"ogbn-paper", "200-128-128-172",
       {111000000, 1600000000, {200, 128, 128, 172}, ModelKind::kGcn}},
      {"friendster", "256-128-128-64",
       {65600000, 2500000000LL, {256, 128, 128, 64}, ModelKind::kGcn}},
  };

  benchutil::PrintTitle(
      "Table 1: memory consumption, 3-layer full-graph GCN",
      "Analytic memory model at the paper's full-scale |V|,|E| and layer "
      "dims.\nPaper values (GB): IT 12.8/177.2/108.3, OPR 18.0/519.4/425.3, "
      "FDS 28.9/293.3/179.3.");
  const std::vector<int> w = {12, 17, 10, 10, 10, 10};
  benchutil::PrintRow({"Dataset", "Model Config", "Topology", "Vtx Data",
                       "Intr Data", "Total"},
                      w);
  benchutil::PrintRule(w);
  for (const Row& r : rows) {
    const MemoryModelOutput out = EvaluateMemoryModel(r.in);
    benchutil::PrintRow(
        {r.dataset, r.config,
         FormatBytes(static_cast<double>(out.topology_bytes)),
         FormatBytes(static_cast<double>(out.vertex_data_bytes)),
         FormatBytes(static_cast<double>(out.intermediate_data_bytes)),
         FormatBytes(static_cast<double>(out.total()))},
        w);
  }

  // Sidebar from §2.4: GPUs needed to hold ogbn-paper's training state.
  const MemoryModelOutput opr = EvaluateMemoryModel(rows[1].in);
  const double a100 = 80.0 * (1ll << 30);
  std::printf("\nA100-80GB GPUs to hold ogbn-paper core training state: "
              "%.0f\n(the paper's ~77 additionally counts neighbor replicas "
              "and communication buffers,\nwhich grow with the GPU count; "
              "see Table 3.)\n",
              static_cast<double>(opr.total()) / a100 + 1);

  // ---- Measured: arena-backed tensor pool on the Fig. 11 configuration ----
  benchutil::PrintTitle(
      "Tensor pool A/B on the Fig. 11 configuration (4 devices, depth 3)",
      "Pooled vs HONGTU_DISABLE_POOL epochs: steady wall-clock, peak live\n"
      "host tensor bytes and heap-allocation counts. Steady pooled allocs\n"
      "must be ZERO (every buffer comes back from a free-list bucket).");
  const std::vector<int> wm = {6, 12, 9, 9, 8, 9, 9, 10, 9};
  benchutil::PrintRow({"Model", "Dataset", "Pooled", "Unpooled", "Speedup",
                       "PkHost", "E1 alloc", "Steady", "NoPool"},
                      wm);
  benchutil::PrintRule(wm);

  const int epochs = std::max(2, benchutil::Epochs());
  std::vector<MemRow> mrows;
  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kGat}) {
    Dataset ds = benchutil::MustLoad("it-2004");
    const int chunks = kind == GnnKind::kGat ? ds.default_chunks_gat
                                             : ds.default_chunks_gcn;
    ModelConfig cfg =
        ModelConfig::Make(kind, ds.feature_dim(), ds.default_hidden_dim,
                          ds.num_classes, 2, 42);
    MemRow row;
    row.model = GnnKindName(kind);
    row.dataset = ds.name;
    row.chunks = chunks;
    const ModeResult on = RunMode(ds, cfg, chunks, /*pooled=*/true, epochs);
    const ModeResult off = RunMode(ds, cfg, chunks, /*pooled=*/false, epochs);
    row.ok = on.ok && off.ok;
    if (row.ok) {
      row.pooled_wall_s = on.wall_s;
      row.unpooled_wall_s = off.wall_s;
      row.pooled_peak_bytes = on.peak_bytes;
      row.unpooled_peak_bytes = off.peak_bytes;
      row.epoch1_alloc_count = on.epoch1_allocs;
      row.steady_alloc_count = on.steady_allocs;
      row.unpooled_alloc_count = off.steady_allocs;
      row.steady_pool_hits = on.steady_hits;
    }
    mrows.push_back(row);
    benchutil::PrintRow(
        {row.model, row.dataset,
         row.ok ? FormatSeconds(row.pooled_wall_s) : "ERR",
         row.ok ? FormatSeconds(row.unpooled_wall_s) : "ERR",
         row.ok ? FormatDouble(row.unpooled_wall_s / row.pooled_wall_s, 2) +
                      "x"
                : "-",
         row.ok ? FormatBytes(static_cast<double>(row.pooled_peak_bytes))
                : "-",
         row.ok ? std::to_string(row.epoch1_alloc_count) : "-",
         row.ok ? std::to_string(row.steady_alloc_count) : "-",
         row.ok ? std::to_string(row.unpooled_alloc_count) : "-"},
        wm);
  }
  WriteMemoryReport(mrows, report_path);
  return 0;
}
