// Reproduces Table 1: memory consumption of graph topology, vertex data and
// intermediate data for 3-layer full-graph GCN training on the three
// billion-scale graphs. Evaluated analytically at the PAPER's full-scale
// parameters (this is exactly how the table is computed: sizes, not runs).
//
// Paper reference values (GB): it-2004 12.8/177.2/108.3,
// ogbn-paper 18.0/519.4/425.3, friendster 28.9/293.3/179.3.

#include <cstdio>

#include "bench_util.h"
#include "hongtu/sim/memory_model.h"

using namespace hongtu;

namespace {

struct Row {
  const char* dataset;
  const char* config;
  MemoryModelInput in;
};

}  // namespace

int main() {
  const std::vector<Row> rows = {
      {"it-2004", "256-128-128-64",
       {41000000, 1200000000, {256, 128, 128, 64}, ModelKind::kGcn}},
      {"ogbn-paper", "200-128-128-172",
       {111000000, 1600000000, {200, 128, 128, 172}, ModelKind::kGcn}},
      {"friendster", "256-128-128-64",
       {65600000, 2500000000LL, {256, 128, 128, 64}, ModelKind::kGcn}},
  };

  benchutil::PrintTitle(
      "Table 1: memory consumption, 3-layer full-graph GCN",
      "Analytic memory model at the paper's full-scale |V|,|E| and layer "
      "dims.\nPaper values (GB): IT 12.8/177.2/108.3, OPR 18.0/519.4/425.3, "
      "FDS 28.9/293.3/179.3.");
  const std::vector<int> w = {12, 17, 10, 10, 10, 10};
  benchutil::PrintRow({"Dataset", "Model Config", "Topology", "Vtx Data",
                       "Intr Data", "Total"},
                      w);
  benchutil::PrintRule(w);
  for (const Row& r : rows) {
    const MemoryModelOutput out = EvaluateMemoryModel(r.in);
    benchutil::PrintRow(
        {r.dataset, r.config,
         FormatBytes(static_cast<double>(out.topology_bytes)),
         FormatBytes(static_cast<double>(out.vertex_data_bytes)),
         FormatBytes(static_cast<double>(out.intermediate_data_bytes)),
         FormatBytes(static_cast<double>(out.total()))},
        w);
  }

  // Sidebar from §2.4: GPUs needed to hold ogbn-paper's training state.
  const MemoryModelOutput opr = EvaluateMemoryModel(rows[1].in);
  const double a100 = 80.0 * (1ll << 30);
  std::printf("\nA100-80GB GPUs to hold ogbn-paper core training state: "
              "%.0f\n(the paper's ~77 additionally counts neighbor replicas "
              "and communication buffers,\nwhich grow with the GPU count; "
              "see Table 3.)\n",
              static_cast<double>(opr.total()) / a100 + 1);
  return 0;
}
