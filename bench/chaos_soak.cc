/// \file chaos_soak.cc
/// \brief Deterministic chaos-soak harness for the intra-epoch recovery
/// layer (net/cluster.h).
///
/// Runs one clean multi-process training baseline, then replays the exact
/// same configuration under a battery of seeded fault scenarios — mid-epoch
/// SIGKILLs against every recovery rung (step replay, survivor adoption,
/// epoch restart), a kill during an in-flight recovery, repeated kills
/// across epochs, seeded drop/delay/disconnect/corruption storms on the RPC
/// wire, checkpoint-write faults, and combinations. Every scenario must
/// finish with a CRC32C state digest (weights + Adam moments + step count)
/// bitwise-identical to the clean run and the same per-epoch loss sequence;
/// any divergence, error, or missing recovery action fails the binary.
///
/// The coordinator is a crash domain of its own: four scenarios crash it
/// (the in-process drill — equivalent to SIGKILL for cluster state: the
/// sockets and journal fd vanish, the workers and disk survive) and start
/// a successor with resume=true in the same harness process. The successor
/// must replay the write-ahead cluster journal, re-attach the surviving
/// workers under a bumped term, adopt the in-flight epoch with the
/// journaled done reports prefilled, and reach the same digest + loss
/// sequence — including with a worker death in flight at crash time, and
/// with a corrupted journal (which must degrade to the checkpoint-fallback
/// rung, never to a wrong answer). Coordinator restart latency (successor
/// Start -> workers re-attached and epoch adopted) lands in the report.
///
/// The harness also measures the recovery-latency claim of the step rung.
/// Two numbers land in the report, both net of the (identical) death-
/// detection window:
///   - step_overhead_s / epoch_rerun_overhead_s: total wall each rung adds
///     for the same death. At balanced partitions these are close to equal
///     by construction — every rung must re-cover exactly the work the dead
///     rank lost — so this ratio documents the honest wall picture.
///   - death_to_resume_s: the coordinator-side recovery stall (detect ->
///     respawn -> hello -> peer rebroadcast -> epoch state resent). This is
///     what the step rung actually charges the cluster's critical path
///     beyond the unavoidable replay, and the <50%-of-full-epoch-rerun
///     assertion compares it against epoch_rerun_overhead_s. The step
///     rung's other wins (W-times less redone CPU work, weights re-sent to
///     one rank instead of all W, survivor state kept live) do not show up
///     in wall-clock at all.
///
/// Results merge into BENCH_fault.json as a "chaos" section (or stand
/// alone when the report file does not exist yet).
///
/// Usage:
///   ./build/chaos_soak [--scale=0.15] [--workers=4] [--epochs=2]
///                      [--transport=uds] [--report=BENCH_fault.json]
///                      [--assert-recovery-ratio]
///
/// Determinism: every injected fault is seeded (fault spec seeds, fixed
/// kill epochs/ranks, fixed dataset/model/partition seeds), so the pass
/// criteria are exact equality, not tolerances.

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hongtu/common/crc32c.h"
#include "hongtu/common/fault.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/net/cluster.h"

using namespace hongtu;

namespace {

uint32_t TensorDigest(const Tensor& t, uint32_t crc) {
  return Crc32c(t.data(), static_cast<size_t>(t.rows() * t.cols()) * 4, crc);
}

uint32_t StateDigest(GnnModel* model, const Adam& adam) {
  uint32_t crc = 0;
  int i = 0;
  for (const Tensor* p : model->AllParams()) {
    crc = TensorDigest(*p, crc);
    crc = TensorDigest(adam.moment1(i), crc);
    crc = TensorDigest(adam.moment2(i), crc);
    ++i;
  }
  const int64_t t = adam.step_count();
  return Crc32c(&t, sizeof(t), crc);
}

struct SoakConfig {
  std::string transport = "uds";
  std::string report = "BENCH_fault.json";
  double scale = 0.15;
  int workers = 4;
  int epochs = 2;
  bool assert_ratio = false;
};

struct Outcome {
  bool ok = false;
  std::string error;
  uint32_t digest = 0;
  std::vector<double> losses;
  std::vector<double> walls;  ///< per-epoch wall seconds
  int respawns = 0;
  int step_recoveries = 0;
  int adoptions = 0;
  double recovery_seconds = 0.0;  ///< death-to-resume, summed over epochs
  double total_wall = 0.0;
  // Coordinator-restart scenarios only:
  int coord_restarts = 0;
  int reattaches = 0;              ///< survivors re-attached by the successor
  double restart_latency_s = -1.0; ///< successor Start: replay + re-attach
};

net::ClusterConfig BaseConfig(const SoakConfig& soak, const Dataset& ds) {
  net::ClusterConfig cc;
  cc.transport = soak.transport;
  cc.num_workers = soak.workers;
  cc.dataset = "reddit";
  cc.dataset_scale = soak.scale;
  cc.dataset_seed = ds.load_seed;
  cc.model_kind = GnnKind::kGcn;
  cc.model_dims = {ds.feature_dim(), 16, ds.num_classes};
  cc.model_seed = 2024;
  cc.chunks_per_partition = 2;
  cc.heartbeat_interval_s = 0.05;
  cc.peer_timeout_s = 1.0;
  cc.rpc_deadline_s = 5.0;
  cc.epoch_deadline_s = 90.0;  // a wedged scenario fails fast, not in 5 min
  return cc;
}

void RemoveTree(const std::string& path) {
  DIR* d = ::opendir(path.c_str());
  if (d != nullptr) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      const std::string p = path + "/" + name;
      if (::unlink(p.c_str()) != 0) RemoveTree(p);
    }
    ::closedir(d);
  }
  ::rmdir(path.c_str());
}

/// One full coordinator lifecycle under this scenario's config mutation.
/// `post_start` (optional) arms coordinator-side fault sites after the
/// workers are up — worker processes never inherit this registry.
Outcome RunScenario(const SoakConfig& soak, const Dataset& ds,
                    const std::function<void(net::ClusterConfig*)>& mutate,
                    const std::function<void()>& post_start = {}) {
  Outcome out;
  net::ClusterConfig cc = BaseConfig(soak, ds);
  if (mutate) mutate(&cc);
  const auto t0 = std::chrono::steady_clock::now();
  auto cr = net::ClusterCoordinator::Start(std::move(cc));
  if (!cr.ok()) {
    out.error = cr.status().ToString();
    return out;
  }
  std::unique_ptr<net::ClusterCoordinator> coord = cr.MoveValueUnsafe();
  if (post_start) post_start();
  for (int e = 0; e < soak.epochs; ++e) {
    auto er = coord->RunEpoch();
    if (!er.ok()) {
      out.error = er.status().ToString();
      return out;
    }
    out.losses.push_back(er.ValueOrDie().loss);
    out.walls.push_back(er.ValueOrDie().wall_seconds);
  }
  out.digest = StateDigest(coord->model(), *coord->adam());
  out.respawns = coord->respawn_count();
  out.step_recoveries = coord->step_recovery_count();
  out.adoptions = coord->adoption_count();
  out.recovery_seconds = coord->recovery_seconds();
  out.total_wall = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  out.ok = true;
  return out;
}

/// Coordinator crash + successor takeover in one harness lifecycle.
///
/// Phase 1 runs `phase1_epochs` with `mutate` applied (crash drills and/or
/// worker kills) against stable on-disk state. When `expect_crash`, the
/// drill must fire (RunEpoch fails, the coordinator object is left in its
/// post-crash state: sockets and journal fd gone, workers and disk alive);
/// otherwise phase 1 must finish cleanly and is shut down normally. With
/// `corrupt_journal`, the journal header is then damaged so the successor's
/// replay MUST fail and degrade to the checkpoint-fallback rung. Phase 2
/// starts a successor with resume=true (no drills) and trains whatever the
/// applied-epoch floor says is left of soak.epochs. Losses concatenate
/// across the phases — the pass criteria against the clean run are
/// unchanged.
Outcome RunCoordRestartScenario(
    const SoakConfig& soak, const Dataset& ds,
    const std::function<void(net::ClusterConfig*)>& mutate, bool expect_crash,
    int phase1_epochs, bool corrupt_journal) {
  Outcome out;
  char tmpl[] = "/tmp/hongtu-chaos.XXXXXX";
  const char* dirp = ::mkdtemp(tmpl);
  if (dirp == nullptr) {
    out.error = "mkdtemp failed";
    return out;
  }
  const std::string dir = dirp;
  const auto t0 = std::chrono::steady_clock::now();

  {
    net::ClusterConfig c1 = BaseConfig(soak, ds);
    c1.runtime_dir = dir;
    c1.checkpoint_dir = dir;
    if (mutate) mutate(&c1);
    auto cr = net::ClusterCoordinator::Start(std::move(c1));
    if (!cr.ok()) {
      out.error = "phase 1 start: " + cr.status().ToString();
      RemoveTree(dir);
      return out;
    }
    std::unique_ptr<net::ClusterCoordinator> coord = cr.MoveValueUnsafe();
    bool crashed = false;
    for (int e = 0; e < phase1_epochs; ++e) {
      auto er = coord->RunEpoch();
      if (!er.ok()) {
        crashed = true;
        break;
      }
      out.losses.push_back(er.ValueOrDie().loss);
      out.walls.push_back(er.ValueOrDie().wall_seconds);
    }
    if (expect_crash && !crashed) {
      out.error = "coordinator crash drill never fired in phase 1";
      coord->Shutdown();
      RemoveTree(dir);
      return out;
    }
    if (!expect_crash) {
      if (crashed) {
        out.error = "phase 1 failed before the planned handover";
        RemoveTree(dir);
        return out;
      }
      coord->Shutdown();  // clean handover: workers exit, journal survives
    }
    // A crashed coordinator's destructor must not touch the workers or the
    // on-disk state the successor is about to claim.
  }

  if (corrupt_journal) {
    std::FILE* f = std::fopen((dir + "/cluster.journal").c_str(), "r+b");
    if (f == nullptr) {
      out.error = "journal missing before corruption";
      RemoveTree(dir);
      return out;
    }
    std::fseek(f, 1, SEEK_SET);  // break the magic: replay must fail loudly
    std::fputc(0x7f, f);
    std::fclose(f);
  }

  net::ClusterConfig c2 = BaseConfig(soak, ds);
  c2.runtime_dir = dir;
  c2.checkpoint_dir = dir;
  c2.resume = true;
  const auto r0 = std::chrono::steady_clock::now();
  auto cr2 = net::ClusterCoordinator::Start(std::move(c2));
  if (!cr2.ok()) {
    out.error = "successor start: " + cr2.status().ToString();
    RemoveTree(dir);
    return out;
  }
  std::unique_ptr<net::ClusterCoordinator> succ = cr2.MoveValueUnsafe();
  out.restart_latency_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - r0)
                              .count();
  out.coord_restarts = 1;
  out.reattaches = succ->reattach_count();
  for (int e = static_cast<int>(succ->epochs_completed()); e < soak.epochs;
       ++e) {
    auto er = succ->RunEpoch();
    if (!er.ok()) {
      out.error = "successor epoch " + std::to_string(e) + ": " +
                  er.status().ToString();
      succ->Shutdown();
      RemoveTree(dir);
      return out;
    }
    out.losses.push_back(er.ValueOrDie().loss);
    out.walls.push_back(er.ValueOrDie().wall_seconds);
  }
  out.digest = StateDigest(succ->model(), *succ->adam());
  out.respawns = succ->respawn_count();
  out.step_recoveries = succ->step_recovery_count();
  out.adoptions = succ->adoption_count();
  out.recovery_seconds = succ->recovery_seconds();
  succ->Shutdown();
  out.total_wall = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  out.ok = true;
  RemoveTree(dir);
  return out;
}

struct Scenario {
  std::string name;
  std::function<void(net::ClusterConfig*)> mutate;
  std::function<void()> post_start;
  /// Extra pass predicate on top of digest identity ("" = pass).
  std::function<std::string(const Outcome&)> expect;
  /// Custom lifecycle (coordinator-restart scenarios); overrides mutate/
  /// post_start when set.
  std::function<Outcome(const SoakConfig&, const Dataset&)> run;
};

std::string JsonEscape(const std::string& s) {
  std::string o;
  for (char c : s) {
    if (c == '"' || c == '\\') (o += '\\') += c;
    else if (c == '\n') o += "\\n";
    else o += c;
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  // Must run before anything else: under HONGTU_DIST_ROLE=worker this
  // process IS a cluster worker and never reaches the harness code.
  net::MaybeRunClusterWorker();

  SoakConfig soak;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) soak.scale = std::atof(a + 8);
    else if (std::strncmp(a, "--workers=", 10) == 0)
      soak.workers = std::atoi(a + 10);
    else if (std::strncmp(a, "--epochs=", 9) == 0)
      soak.epochs = std::atoi(a + 9);
    else if (std::strncmp(a, "--transport=", 12) == 0) soak.transport = a + 12;
    else if (std::strncmp(a, "--report=", 9) == 0) soak.report = a + 9;
    else if (std::strcmp(a, "--assert-recovery-ratio") == 0)
      soak.assert_ratio = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return 2;
    }
  }
  if (soak.workers < 3) {
    // kill_rank=1 with kill_on_recover_rank=2 and the adoption host
    // election all need at least 3 distinct ranks.
    std::fprintf(stderr, "chaos_soak needs --workers>=3\n");
    return 2;
  }

  std::printf("== chaos soak: %d workers, %d epochs, scale %.2f, %s ==\n",
              soak.workers, soak.epochs, soak.scale, soak.transport.c_str());
  auto dsr = LoadDatasetScaled("reddit", soak.scale);
  if (!dsr.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dsr.status().ToString().c_str());
    return 1;
  }
  const Dataset ds = dsr.MoveValueUnsafe();

  const double pto = 1.0;  // keep in sync with RunScenario's peer_timeout_s

  // ---- Scenario battery. Every seed below is part of the contract: the
  // same binary run twice produces the same fault schedule.
  std::vector<Scenario> scenarios;
  auto expect_min = [](int Outcome::*field, int min, const char* what) {
    return [field, min, what](const Outcome& o) -> std::string {
      if (o.*field >= min) return "";
      std::ostringstream e;
      e << "expected " << what << " >= " << min << ", got " << o.*field;
      return e.str();
    };
  };

  scenarios.push_back({"kill_mid_epoch_step",
                       [](net::ClusterConfig* c) {
                         c->kill_rank = 1;
                         c->kill_epoch = 0;
                       },
                       {},
                       expect_min(&Outcome::step_recoveries, 1,
                                  "step_recoveries")});
  scenarios.push_back({"kill_mid_epoch_adopt",
                       [](net::ClusterConfig* c) {
                         c->recover_mode = "adopt";
                         c->kill_rank = 1;
                         c->kill_epoch = 0;
                       },
                       {},
                       expect_min(&Outcome::adoptions, 1, "adoptions")});
  scenarios.push_back({"kill_mid_epoch_epoch_ladder",
                       [](net::ClusterConfig* c) {
                         c->recover_mode = "epoch";
                         c->kill_rank = 1;
                         c->kill_epoch = 0;
                       },
                       {},
                       expect_min(&Outcome::respawns, 1, "respawns")});
  scenarios.push_back({"kill_during_recovery",
                       [](net::ClusterConfig* c) {
                         c->kill_rank = 1;
                         c->kill_epoch = 0;
                         c->kill_on_recover_rank = 2;
                       },
                       {},
                       expect_min(&Outcome::step_recoveries, 2,
                                  "step_recoveries")});
  scenarios.push_back({"repeated_kills",
                       [](net::ClusterConfig* c) {
                         c->kill_rank = 1;
                         c->kill_epoch = 0;
                         c->kill2_rank = 2;
                         c->kill2_epoch = 1;
                       },
                       {},
                       expect_min(&Outcome::step_recoveries, 2,
                                  "step_recoveries")});
  scenarios.push_back({"net_drop_storm",
                       [](net::ClusterConfig* c) {
                         c->fault_rank = 1;
                         c->worker_fault_spec =
                             "net.send:drop:0.05:101;net.recv:drop:0.03:103";
                       },
                       {},
                       {}});
  scenarios.push_back({"delay_disconnect_storm",
                       [](net::ClusterConfig* c) {
                         c->fault_rank = 2;
                         c->worker_fault_spec =
                             "net.send:delay:0.08:107;"
                             "net.recv:disconnect:0.02:109";
                       },
                       {},
                       {}});
  scenarios.push_back({"corrupt_payload_storm",
                       [](net::ClusterConfig* c) {
                         c->fault_rank = 1;
                         c->worker_fault_spec = "net.send:corrupt:0.05:113";
                       },
                       {},
                       {}});
  scenarios.push_back({"kill_plus_drop_storm",
                       [](net::ClusterConfig* c) {
                         c->kill_rank = 1;
                         c->kill_epoch = 0;
                         c->fault_rank = 2;
                         c->worker_fault_spec = "net.send:drop:0.04:127";
                       },
                       {},
                       expect_min(&Outcome::step_recoveries, 1,
                                  "step_recoveries")});
  scenarios.push_back(
      {"ckpt_fault_with_net_faults",
       [](net::ClusterConfig* c) {
         c->fault_rank = 1;
         c->worker_fault_spec = "net.send:drop:0.04:17";
       },
       [] {
         fault::SiteSpec spec;
         spec.kind = fault::Kind::kTransient;
         spec.prob = 0.5;
         spec.seed = 99;
         const Status s = fault::Arm(fault::Site::kCkptWrite, spec);
         if (!s.ok()) {
           std::fprintf(stderr, "arm ckpt.write: %s\n", s.ToString().c_str());
           std::exit(1);
         }
       },
       {}});

  // ---- Coordinator crash domain. Each runs a crash + successor-takeover
  // lifecycle (RunCoordRestartScenario); digest + loss identity criteria
  // are the same as every other scenario.
  const int W = soak.workers;
  scenarios.push_back(
      {"coordinator_crash_mid_epoch",
       {},
       {},
       [W](const Outcome& o) -> std::string {
         if (o.reattaches < W)
           return "expected every worker to re-attach (" +
                  std::to_string(o.reattaches) + "/" + std::to_string(W) + ")";
         if (o.respawns != 0)
           return "survivors should re-attach, not respawn (got " +
                  std::to_string(o.respawns) + ")";
         return "";
       },
       [W](const SoakConfig& s, const Dataset& d) {
         // Crash after EVERY done report of epoch 0 is journaled but before
         // the Adam apply: the successor must adopt the run and finish the
         // epoch purely from the journal — zero recomputation.
         return RunCoordRestartScenario(
             s, d,
             [W](net::ClusterConfig* c) {
               c->coord_crash_epoch = 0;
               c->coord_crash_done = W;
             },
             /*expect_crash=*/true, /*phase1_epochs=*/s.epochs,
             /*corrupt_journal=*/false);
       }});
  scenarios.push_back(
      {"coordinator_crash_during_worker_recovery",
       {},
       {},
       [](const Outcome& o) -> std::string {
         if (o.respawns < 1)
           return "the dead worker must be respawned by the successor";
         if (o.reattaches < 1) return "survivors must re-attach";
         return "";
       },
       [](const SoakConfig& s, const Dataset& d) {
         // Worker 1 SIGKILLs itself mid-epoch; the coordinator crashes in
         // its own death-recovery branch. The successor inherits BOTH
         // failures: respawn + rejoin the dead rank, re-attach the rest.
         return RunCoordRestartScenario(
             s, d,
             [](net::ClusterConfig* c) {
               c->kill_rank = 1;
               c->kill_epoch = 0;
               c->coord_crash_on_death = true;
             },
             /*expect_crash=*/true, /*phase1_epochs=*/s.epochs,
             /*corrupt_journal=*/false);
       }});
  scenarios.push_back(
      {"coordinator_plus_worker_double_kill",
       {},
       {},
       [](const Outcome& o) -> std::string {
         if (o.respawns < 1)
           return "the dead worker must be respawned by the successor";
         return "";
       },
       [](const SoakConfig& s, const Dataset& d) {
         // Worker 1 dies mid-epoch AND the coordinator crashes once two
         // survivor reports are journaled — before anyone recovered r1.
         return RunCoordRestartScenario(
             s, d,
             [](net::ClusterConfig* c) {
               c->kill_rank = 1;
               c->kill_epoch = 0;
               c->coord_crash_epoch = 0;
               c->coord_crash_done = 2;
             },
             /*expect_crash=*/true, /*phase1_epochs=*/s.epochs,
             /*corrupt_journal=*/false);
       }});
  scenarios.push_back(
      {"journal_corruption_fallback",
       {},
       {},
       [](const Outcome& o) -> std::string {
         if (o.reattaches != 0)
           return "a corrupt journal must not drive re-attachment";
         return "";
       },
       [](const SoakConfig& s, const Dataset& d) {
         // Clean handover after epoch 0, then the journal header is
         // damaged. The successor must refuse the replay, fall back to the
         // checkpoint rung (fresh workers, applied-epoch floor from the
         // checkpoint) and still converge to the identical state.
         return RunCoordRestartScenario(s, d, {},
                                        /*expect_crash=*/false,
                                        /*phase1_epochs=*/1,
                                        /*corrupt_journal=*/true);
       }});

  // ---- Baseline.
  std::printf("-- baseline (clean) ...\n");
  const Outcome clean = RunScenario(soak, ds, {});
  if (!clean.ok) {
    std::fprintf(stderr, "baseline failed: %s\n", clean.error.c_str());
    return 1;
  }
  std::printf("   digest %08x, epoch walls:", clean.digest);
  for (double w : clean.walls) std::printf(" %.3fs", w);
  std::printf("\n");

  // ---- The battery.
  struct Row {
    std::string name;
    Outcome o;
    bool pass = false;
    std::string why;
  };
  std::vector<Row> rows;
  int failures = 0;
  for (const Scenario& sc : scenarios) {
    std::printf("-- %s ...\n", sc.name.c_str());
    Row r;
    r.name = sc.name;
    r.o = sc.run ? sc.run(soak, ds)
                 : RunScenario(soak, ds, sc.mutate, sc.post_start);
    fault::DisarmAll();  // coordinator-side arms must not leak across rows
    if (!r.o.ok) {
      r.why = r.o.error;
    } else if (r.o.digest != clean.digest) {
      std::ostringstream e;
      e << "digest mismatch: " << std::hex << r.o.digest << " vs clean "
        << clean.digest;
      r.why = e.str();
    } else if (r.o.losses != clean.losses) {
      r.why = "per-epoch loss sequence diverged from clean run";
    } else if (sc.expect) {
      r.why = sc.expect(r.o);
    }
    r.pass = r.why.empty();
    if (!r.pass) ++failures;
    std::printf("   %s  wall %.2fs  recov %d step / %d adopt / %d respawn%s%s\n",
                r.pass ? "PASS" : "FAIL", r.o.total_wall,
                r.o.step_recoveries, r.o.adoptions, r.o.respawns,
                r.pass ? "" : "  -- ", r.pass ? "" : r.why.c_str());
    rows.push_back(std::move(r));
  }

  // ---- Recovery-latency comparison: what the death cost under step replay
  // versus under the epoch-restart ladder. Death detection (the peer
  // timeout) is identical for every rung, so it is netted out of both.
  const Outcome* step_kill = nullptr;
  const Outcome* epoch_kill = nullptr;
  const Outcome* coord_kill = nullptr;
  for (const Row& r : rows) {
    if (r.name == "kill_mid_epoch_step" && r.pass) step_kill = &r.o;
    if (r.name == "kill_mid_epoch_epoch_ladder" && r.pass) epoch_kill = &r.o;
    if (r.name == "coordinator_crash_mid_epoch" && r.pass) coord_kill = &r.o;
  }
  double clean_e0 = clean.walls.empty() ? 0.0 : clean.walls[0];
  double step_overhead = -1.0, epoch_overhead = -1.0, wall_ratio = -1.0;
  double death_to_resume = -1.0, machinery_ratio = -1.0;
  if (step_kill != nullptr && epoch_kill != nullptr && !step_kill->walls.empty()
      && !epoch_kill->walls.empty()) {
    step_overhead = step_kill->walls[0] - clean_e0 - pto;
    epoch_overhead = epoch_kill->walls[0] - clean_e0 - pto;
    death_to_resume = step_kill->recovery_seconds;
    if (epoch_overhead > 1e-6) {
      wall_ratio = step_overhead / epoch_overhead;
      machinery_ratio = death_to_resume / epoch_overhead;
    }
    std::printf(
        "-- recovery latency: clean epoch %.3fs | step adds %.3fs, epoch "
        "ladder adds %.3fs (detection %.1fs netted out, wall ratio %.2f) | "
        "recovery stall %.3fs = %.2f of the full-epoch rerun\n",
        clean_e0, step_overhead, epoch_overhead, pto, wall_ratio,
        death_to_resume, machinery_ratio);
    if (soak.assert_ratio) {
      if (machinery_ratio < 0.0 || machinery_ratio >= 0.5) {
        std::fprintf(stderr,
                     "FAIL: step-recovery stall %.3fs is not <50%% of the "
                     "full-epoch-rerun overhead %.3fs (ratio %.2f)\n",
                     death_to_resume, epoch_overhead, machinery_ratio);
        ++failures;
      } else {
        std::printf(
            "   PASS  recovery stall < 50%% of the full-epoch rerun\n");
      }
    }
  }

  // ---- Coordinator restart latency: the successor's Start (journal
  // replay + re-attach + adoption arming) against a full epoch-0 rerun —
  // the cost a journal-less coordinator restart would have paid.
  double coord_restart_latency = -1.0, coord_restart_ratio = -1.0;
  if (coord_kill != nullptr) {
    coord_restart_latency = coord_kill->restart_latency_s;
    if (clean_e0 > 1e-6) coord_restart_ratio = coord_restart_latency / clean_e0;
    std::printf(
        "-- coordinator restart: %.3fs to replay + re-attach %d workers "
        "(%.2f of a clean epoch; the adopted epoch itself recomputes "
        "nothing)\n",
        coord_restart_latency, coord_kill->reattaches, coord_restart_ratio);
    if (soak.assert_ratio && !coord_kill->walls.empty() &&
        clean_e0 > 1e-6 && coord_kill->walls[0] >= clean_e0) {
      // The adopted epoch completes from journaled reports: its wall must
      // undercut a full rerun of the epoch.
      std::fprintf(stderr,
                   "FAIL: adopted epoch wall %.3fs is not below the clean "
                   "epoch rerun %.3fs\n",
                   coord_kill->walls[0], clean_e0);
      ++failures;
    }
  }

  // ---- Merge the "chaos" section into the fault report.
  std::ostringstream js;
  js << "\"chaos\": {\n"
     << "    \"workers\": " << soak.workers << ", \"epochs\": " << soak.epochs
     << ", \"scale\": " << soak.scale << ", \"transport\": \""
     << soak.transport << "\",\n"
     << "    \"clean_digest\": \"" << std::hex << clean.digest << std::dec
     << "\", \"clean_epoch0_wall_s\": " << clean_e0 << ",\n"
     << "    \"recovery_latency\": {\"step_overhead_s\": " << step_overhead
     << ", \"epoch_rerun_overhead_s\": " << epoch_overhead
     << ", \"step_vs_epoch_wall_ratio\": " << wall_ratio
     << ", \"death_to_resume_s\": " << death_to_resume
     << ", \"recovery_stall_vs_rerun_ratio\": " << machinery_ratio
     << ", \"detection_window_s\": " << pto << "},\n"
     << "    \"coordinator_restart\": {\"restart_latency_s\": "
     << coord_restart_latency
     << ", \"restart_vs_clean_epoch_ratio\": " << coord_restart_ratio
     << ", \"reattaches\": "
     << (coord_kill != nullptr ? coord_kill->reattaches : -1) << "},\n"
     << "    \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    js << "      {\"name\": \"" << r.name << "\", \"pass\": "
       << (r.pass ? "true" : "false") << ", \"wall_s\": " << r.o.total_wall
       << ", \"step_recoveries\": " << r.o.step_recoveries
       << ", \"adoptions\": " << r.o.adoptions
       << ", \"respawns\": " << r.o.respawns;
    if (r.o.coord_restarts > 0) {
      js << ", \"coord_restarts\": " << r.o.coord_restarts
         << ", \"reattaches\": " << r.o.reattaches
         << ", \"restart_latency_s\": " << r.o.restart_latency_s;
    }
    if (!r.why.empty()) js << ", \"error\": \"" << JsonEscape(r.why) << "\"";
    js << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "    ]\n  }";

  if (!soak.report.empty()) {
    std::string existing;
    {
      std::ifstream in(soak.report);
      if (in) {
        std::ostringstream ss;
        ss << in.rdbuf();
        existing = ss.str();
      }
    }
    std::string merged;
    const size_t prev = existing.find(",\n  \"chaos\":");
    if (prev != std::string::npos) {
      // Replace a previous run's section: drop it and close the object
      // again so the generic last-brace splice below still applies.
      existing.erase(prev);
      existing += "\n}\n";
    }
    const size_t close = existing.rfind('}');
    if (close != std::string::npos) {
      merged = existing.substr(0, close);
      while (!merged.empty() &&
             (merged.back() == '\n' || merged.back() == ' '))
        merged.pop_back();
      merged += ",\n  " + js.str() + "\n}\n";
    } else {
      merged = "{\n  " + js.str() + "\n}\n";
    }
    std::ofstream outf(soak.report, std::ios::trunc);
    outf << merged;
    std::printf("-- report merged into %s\n", soak.report.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr, "chaos soak: %d scenario(s) FAILED\n", failures);
    return 1;
  }
  std::printf("chaos soak: all %zu scenarios digest-identical. OK\n",
              rows.size());
  return 0;
}
