// Ablation (DESIGN.md): the recomputation-caching hybrid (§4.2) versus pure
// recomputation, across all cacheable models and the three large graphs.
// The paper motivates the hybrid with the O(alpha|V|) -> O(|V|) host-traffic
// conversion; this bench quantifies when it pays off: the win grows with the
// replication factor alpha and disappears when alpha < 2 (cache write+read
// costs 2|V| rows). Also reports the GPU-time saving from skipping the
// AGGREGATE recomputation.

#include <cstdio>

#include "bench_util.h"
#include "hongtu/engine/hongtu_engine.h"

using namespace hongtu;

int main() {
  benchutil::PrintTitle(
      "Ablation: recomputation-caching hybrid vs pure recomputation",
      "2-layer models, 4 devices, vanilla per-chunk loading (the regime of "
      "the paper's\nO(alpha|V|) vs O(|V|) argument). 'win' = recompute / "
      "hybrid simulated time.");
  const std::vector<int> w = {6, 12, 7, 11, 11, 11, 11, 7};
  benchutil::PrintRow({"Model", "Dataset", "alpha", "hyb H2D", "rec H2D",
                       "hyb GPU", "rec GPU", "win"},
                      w);
  benchutil::PrintRule(w);

  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kSage, GnnKind::kGin}) {
    for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
      Dataset ds = benchutil::MustLoad(name);
      ModelConfig cfg =
          ModelConfig::Make(kind, ds.feature_dim(), ds.default_hidden_dim,
                            ds.num_classes, 2, 42);
      EpochStats st[2];
      double alpha = 0;
      bool ok = true;
      for (int hybrid = 0; hybrid < 2 && ok; ++hybrid) {
        HongTuOptions o;
        o.num_devices = 4;
        o.chunks_per_partition = ds.default_chunks_gcn;
        o.device_capacity_bytes = 1ll << 40;
        o.dedup = DedupLevel::kNone;  // vanilla loading regime
        o.hybrid_cache = hybrid == 1;
        auto e = HongTuEngine::Create(&ds, cfg, o);
        if (!e.ok()) {
          ok = false;
          break;
        }
        alpha = e.ValueOrDie()->partition().ReplicationFactor(
            ds.graph.num_vertices());
        auto r = e.ValueOrDie()->TrainEpoch();
        if (!r.ok()) {
          ok = false;
          break;
        }
        st[hybrid] = r.ValueOrDie();
      }
      if (!ok) continue;
      benchutil::PrintRow(
          {GnnKindName(kind), ds.name, FormatDouble(alpha, 2),
           FormatBytes(static_cast<double>(st[1].bytes.h2d)),
           FormatBytes(static_cast<double>(st[0].bytes.h2d)),
           FormatSeconds(st[1].time.gpu), FormatSeconds(st[0].time.gpu),
           FormatDouble(st[0].SimSeconds() / st[1].SimSeconds(), 2) + "x"},
          w);
    }
  }
  std::printf("\nGAT is excluded: its edge-NN AGGREGATE is not cacheable and "
              "always recomputes (§4.2).\n");
  return 0;
}
