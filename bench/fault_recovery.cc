// Fault-tolerance cost measurement (the ISSUE 6 acceptance artifact,
// recorded in BENCH_fault.json):
//
//  1. Checkpoint cost — wall seconds to Save and Restore a full training
//     snapshot (params + Adam moments), next to the wall seconds of one
//     training epoch. The snapshot is KBs against an epoch of seconds, so
//     per-epoch checkpointing must be noise.
//  2. Retry overhead — epoch wall time with the `comm.fetch` transient
//     fault armed at rates 0 / 1e-4 / 1e-3, plus one run with `corrupt`
//     payload faults at 1e-3 exercising the CRC32C verify-and-repair path.
//     The recovery counters from EpochStats prove the paths actually fired.
//
// Rates are per fetch *check*; ForwardLoad pokes once per (batch, layer)
// attempt, so a 2-layer GCN with 32 chunks sees ~100 checks per epoch.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>

#include "bench_util.h"
#include "hongtu/common/fault.h"
#include "hongtu/engine/checkpoint.h"

using namespace hongtu;

namespace {

double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct FaultRow {
  std::string kind;  // "transient" | "corrupt"
  double rate = 0;
  double epoch_wall_s = -1;
  double epoch_sim_s = -1;
  fault::RecoveryCounters recovery;
};

}  // namespace

int main(int argc, char** argv) {
  const char* report_path = "BENCH_fault.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fault-report=", 15) == 0) {
      report_path = argv[i] + 15;
    }
  }

  benchutil::PrintTitle(
      "Fault tolerance: checkpoint cost and retry overhead",
      "Checkpoint (params + Adam state) vs epoch wall time, then epoch wall\n"
      "time with comm.fetch faults armed at increasing rates. Expected:\n"
      "checkpointing is noise next to an epoch, and recovery overhead stays\n"
      "proportional to the (tiny) number of injected faults.");

  Dataset ds = benchutil::MustLoad("it-2004");
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                                      ds.default_hidden_dim, ds.num_classes,
                                      /*layers=*/2, 42);
  EngineConfig o;
  o.num_devices = 4;
  o.chunks_per_partition = ds.default_chunks_gcn;
  o.device_capacity_bytes = 1ll << 40;

  auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, o);
  if (!e.ok()) {
    std::fprintf(stderr, "fault_recovery: engine create failed: %s\n",
                 e.status().ToString().c_str());
    return 1;
  }
  Engine* engine = e.ValueOrDie().get();
  const int epochs = benchutil::Epochs();

  // ---- Checkpoint cost. ----------------------------------------------------
  char dir_template[] = "/tmp/hongtu_fault_bench_XXXXXX";
  const char* ckpt_dir = mkdtemp(dir_template);
  if (ckpt_dir == nullptr) {
    std::fprintf(stderr, "fault_recovery: mkdtemp failed\n");
    return 1;
  }
  CheckpointManager mgr(ckpt_dir);

  // One warm-up epoch so the checkpointed state is post-step (and pools are
  // warm for the timed runs).
  double clean_wall = 0, clean_sim = 0;
  {
    auto r = engine->RunEpoch();
    if (!r.ok()) {
      std::fprintf(stderr, "fault_recovery: warm-up epoch failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    for (int k = 0; k < epochs; ++k) {
      const double t0 = WallNow();
      auto rr = engine->RunEpoch();
      if (!rr.ok()) return 1;
      clean_wall += WallNow() - t0;
      clean_sim += rr.ValueOrDie().SimSeconds();
    }
    clean_wall /= epochs;
    clean_sim /= epochs;
  }

  double save_s = 0, restore_s = 0;
  {
    double t0 = WallNow();
    const Status st = mgr.Save(engine->model(), *engine->adam(), 1);
    save_s = WallNow() - t0;
    if (!st.ok()) {
      std::fprintf(stderr, "fault_recovery: save failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    t0 = WallNow();
    auto restored = mgr.Restore(engine->model(), engine->adam());
    restore_s = WallNow() - t0;
    if (!restored.ok()) {
      std::fprintf(stderr, "fault_recovery: restore failed: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("\nCheckpoint: save %.3f ms, restore %.3f ms, epoch %.1f ms "
              "(save = %.3f%% of an epoch)\n",
              save_s * 1e3, restore_s * 1e3, clean_wall * 1e3,
              100.0 * save_s / clean_wall);

  // ---- Retry overhead under injected fault rates. --------------------------
  const std::vector<int> w = {10, 8, 10, 10, 30};
  benchutil::PrintRow({"Kind", "Rate", "Wall", "Sim", "Recovery"}, w);
  benchutil::PrintRule(w);

  struct Config {
    const char* kind;
    fault::Kind fk;
    double rate;
  };
  // The ISSUE's rates (1e-4 / 1e-3 per check) model realistic failure
  // frequencies; the 5e-2 rows force enough fires in a short run to show the
  // recovery machinery actually engaging (nonzero counters).
  const Config configs[] = {
      {"none", fault::Kind::kNone, 0.0},
      {"transient", fault::Kind::kTransient, 1e-4},
      {"transient", fault::Kind::kTransient, 1e-3},
      {"transient", fault::Kind::kTransient, 5e-2},
      {"corrupt", fault::Kind::kCorrupt, 1e-3},
      {"corrupt", fault::Kind::kCorrupt, 5e-2},
  };
  std::vector<FaultRow> rows;
  for (const Config& c : configs) {
    fault::DisarmAll();
    if (c.fk != fault::Kind::kNone) {
      fault::SiteSpec spec;
      spec.kind = c.fk;
      spec.prob = c.rate;
      spec.seed = 2026;
      if (!fault::Arm(fault::Site::kCommFetch, spec).ok()) return 1;
    }
    FaultRow row;
    row.kind = c.kind;
    row.rate = c.rate;
    row.epoch_wall_s = 0;
    row.epoch_sim_s = 0;
    bool failed = false;
    for (int k = 0; k < epochs; ++k) {
      const double t0 = WallNow();
      auto r = engine->RunEpoch();
      if (!r.ok()) {
        failed = true;
        break;
      }
      row.epoch_wall_s += WallNow() - t0;
      row.epoch_sim_s += r.ValueOrDie().SimSeconds();
      for (int ev = 0; ev < fault::kNumDegradeEvents; ++ev) {
        row.recovery.counts[ev] += r.ValueOrDie().recovery.counts[ev];
      }
    }
    fault::DisarmAll();
    if (failed) {
      row.epoch_wall_s = row.epoch_sim_s = -1;
    } else {
      row.epoch_wall_s /= epochs;
      row.epoch_sim_s /= epochs;
    }
    const std::string rec = row.recovery.ToString();
    benchutil::PrintRow(
        {row.kind, FormatDouble(row.rate, 4),
         row.epoch_wall_s < 0 ? "FAIL" : FormatSeconds(row.epoch_wall_s),
         row.epoch_sim_s < 0 ? "-" : FormatSeconds(row.epoch_sim_s),
         rec.empty() ? "clean" : rec},
        w);
    rows.push_back(std::move(row));
  }

  // ---- BENCH_fault.json. ---------------------------------------------------
  std::FILE* f = std::fopen(report_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fault_recovery: cannot write %s\n", report_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fault\",\n  \"scale\": %g,\n",
               benchutil::Scale());
  std::fprintf(f, "  \"model\": \"gcn\",\n  \"dataset\": \"%s\",\n",
               ds.name.c_str());
  std::fprintf(f, "  \"epoch_wall_s\": %.6g,\n  \"epoch_sim_s\": %.6g,\n",
               clean_wall, clean_sim);
  std::fprintf(f,
               "  \"checkpoint\": {\"save_s\": %.6g, \"restore_s\": %.6g, "
               "\"save_frac_of_epoch\": %.6g},\n",
               save_s, restore_s, save_s / clean_wall);
  std::fprintf(f, "  \"fault_runs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const FaultRow& r = rows[i];
    const char* sep = i + 1 < rows.size() ? "," : "";
    if (r.epoch_wall_s < 0) {
      std::fprintf(f,
                   "    {\"kind\": \"%s\", \"rate\": %g, \"error\": "
                   "\"run failed\"}%s\n",
                   r.kind.c_str(), r.rate, sep);
      continue;
    }
    std::fprintf(
        f,
        "    {\"kind\": \"%s\", \"rate\": %g, \"wall_s\": %.6g, "
        "\"sim_s\": %.6g, \"overhead\": %.4g, \"retries\": %lld, "
        "\"integrity_refetches\": %lld, \"pipeline_replays\": %lld}%s\n",
        r.kind.c_str(), r.rate, r.epoch_wall_s, r.epoch_sim_s,
        clean_wall > 0 ? r.epoch_wall_s / clean_wall : 0.0,
        static_cast<long long>(
            r.recovery[fault::DegradeEvent::kTransientRetry]),
        static_cast<long long>(
            r.recovery[fault::DegradeEvent::kIntegrityRefetch]),
        static_cast<long long>(
            r.recovery[fault::DegradeEvent::kPipelineReplay]),
        sep);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote %s\n", report_path);
  return 0;
}
