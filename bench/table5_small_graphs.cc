// Reproduces Table 5: comparison with DGL (single-GPU in-memory) and
// single-node DistGNN (CPU) on the two small graphs, GCN and GAT with
// 2/4/8 layers. Roles: DistGNN -> CpuClusterEngine(num_nodes=1),
// DGL -> InMemoryEngine(1 device), HongTu-IM -> InMemoryEngine(4 devices),
// HongTu -> HongTuEngine(4 devices). Reported numbers are simulated seconds
// per epoch; the paper's claims under test: GPU engines are >= one order of
// magnitude faster than the CPU engine, HongTu-IM ~ DGL, and HongTu is
// modestly slower than in-memory engines (offloading overhead).

#include <cstdio>

#include "bench_util.h"

using namespace hongtu;

namespace {

std::string RunCpu(const Dataset& ds, const ModelConfig& cfg, int layers,
                   ModelKind kind) {
  EngineConfig o;
  o.num_nodes = 1;
  // Single CPU server: 768 GB in the paper's setup.
  o.node_memory_bytes =
      benchutil::ScaledCapacity(ds, 768.0 * (1ll << 30), layers, kind);
  auto e = Engine::Create(EngineKind::kCpuCluster, &ds, cfg, o);
  if (!e.ok()) return "ERR";
  return benchutil::TimeOrOom(e.ValueOrDie()->RunEpoch());
}

std::string RunInMemory(const Dataset& ds, const ModelConfig& cfg,
                        int devices, int layers, ModelKind kind) {
  EngineConfig o;
  o.num_devices = devices;
  o.device_capacity_bytes =
      benchutil::ScaledDeviceCapacity(ds, layers, kind);
  auto e = Engine::Create(EngineKind::kInMemory, &ds, cfg, o);
  if (!e.ok()) return "ERR";
  auto r = e.ValueOrDie()->RunEpoch();
  return benchutil::TimeOrOom(r);
}

std::string RunHongTu(const Dataset& ds, const ModelConfig& cfg, int layers,
                      ModelKind kind) {
  EngineConfig o;
  o.num_devices = 4;
  o.chunks_per_partition = 1;  // small graphs are not split further (§7.1)
  o.device_capacity_bytes =
      benchutil::ScaledDeviceCapacity(ds, layers, kind);
  auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, o);
  if (!e.ok()) return "ERR";
  return benchutil::TimeOrOom(e.ValueOrDie()->RunEpoch());
}

}  // namespace

int main() {
  benchutil::PrintTitle(
      "Table 5: vs DGL and single-node DistGNN on small graphs",
      "Simulated seconds/epoch. Expected shape: CPU >> GPU engines; "
      "HongTu-IM ~ DGL;\nHongTu 1.3x-3.8x slower than DGL; DGL OOMs on "
      "8-layer GAT (ogbn-products).");
  const std::vector<int> w = {7, 6, 12, 10, 10, 11, 10};
  benchutil::PrintRow({"Layers", "Model", "Dataset", "DistGNN", "DGL",
                       "HongTu-IM", "HongTu"},
                      w);
  benchutil::PrintRule(w);

  for (int layers : {2, 4, 8}) {
    for (GnnKind kind : {GnnKind::kGcn, GnnKind::kGat}) {
      for (const char* name : {"reddit", "ogbn-products"}) {
        Dataset ds = benchutil::MustLoad(name);
        ModelConfig cfg =
            ModelConfig::Make(kind, ds.feature_dim(), ds.default_hidden_dim,
                              ds.num_classes, layers, 42);
        const ModelKind mk =
            kind == GnnKind::kGat ? ModelKind::kGat : ModelKind::kGcn;
        benchutil::PrintRow({std::to_string(layers), GnnKindName(kind),
                             ds.name, RunCpu(ds, cfg, layers, mk),
                             RunInMemory(ds, cfg, 1, layers, mk),
                             RunInMemory(ds, cfg, 4, layers, mk),
                             RunHongTu(ds, cfg, layers, mk)},
                            w);
      }
    }
  }
  return 0;
}
