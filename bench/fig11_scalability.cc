// Reproduces Figure 11: scaling from 1 to 4 devices for GCN and GAT on the
// three large graphs, normalized speedup over 1 device. Claim: 3.3x-3.8x at
// 4 devices (near-linear).
//
// A second section compares the three chunk executors at 4 devices — serial,
// the 3-lane stage pipeline (max_inflight 3) and the dataflow task graph
// (max_inflight 3) — and records the result in BENCH_pipeline.json (the
// ISSUE 2 / ISSUE 7 acceptance artifact): the concurrent executors must hide
// communication behind compute, i.e. beat the serial total while reporting
// the hidden seconds in the Overlap column, and the task graph must beat or
// tie the fixed-depth pipeline on most configurations (its cross-layer edges
// release work the stage pipeline's per-layer barrier serializes).

#include <cstdio>
#include <cstring>

#include "bench_util.h"

using namespace hongtu;

namespace {

struct PipelineRow {
  std::string model;
  std::string dataset;
  int chunks = 0;
  double serial_s = -1;
  double pipelined_s = -1;
  double overlap_s = -1;
  /// The dataflow task-graph executor at the same in-flight window.
  double taskgraph_s = -1;
  /// The pipelined epoch again with the bf16 comm wire (kernels/codec.h):
  /// halved wire bytes compound with the overlap.
  double pipelined_bf16_s = -1;
};

double RunEpochSimSeconds(const Dataset& ds, const ModelConfig& cfg,
                          int chunks, ExecutorKind ex, int inflight,
                          double* overlap_s,
                          kernels::CommPrecision wire =
                              kernels::CommPrecision::kFp32,
                          fault::RecoveryCounters* rec = nullptr) {
  EngineConfig o;
  o.num_devices = 4;
  o.chunks_per_partition = chunks;
  o.device_capacity_bytes = 1ll << 40;
  o.executor = ex;
  o.max_inflight = inflight;
  o.comm_precision = wire;
  auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, o);
  if (!e.ok()) return -1;
  auto r = e.ValueOrDie()->RunEpoch();
  if (!r.ok()) return -1;
  if (overlap_s != nullptr) *overlap_s = r.ValueOrDie().time.overlapped;
  if (rec != nullptr) {
    for (int k = 0; k < fault::kNumDegradeEvents; ++k) {
      rec->counts[k] += r.ValueOrDie().recovery.counts[k];
    }
  }
  return r.ValueOrDie().SimSeconds();
}

void WritePipelineReport(const std::vector<PipelineRow>& rows,
                         const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fig11: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"pipeline\",\n  \"scale\": %g,\n",
               benchutil::Scale());
  std::fprintf(f, "  \"devices\": 4,\n  \"pipeline_depth\": 3,\n");
  std::fprintf(f, "  \"max_inflight\": 3,\n");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const PipelineRow& r = rows[i];
    const char* sep = i + 1 < rows.size() ? "," : "";
    if (r.serial_s <= 0 || r.pipelined_s <= 0) {
      // A failed run must not masquerade as data (negative seconds).
      std::fprintf(f,
                   "    {\"model\": \"%s\", \"dataset\": \"%s\", "
                   "\"chunks\": %d, \"error\": \"run failed\"}%s\n",
                   r.model.c_str(), r.dataset.c_str(), r.chunks, sep);
      continue;
    }
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"dataset\": \"%s\", \"chunks\": %d, "
        "\"serial_sim_s\": %.6g, \"pipelined_sim_s\": %.6g, "
        "\"overlap_s\": %.6g, \"speedup\": %.4g",
        r.model.c_str(), r.dataset.c_str(), r.chunks, r.serial_s,
        r.pipelined_s, r.overlap_s, r.serial_s / r.pipelined_s);
    if (r.taskgraph_s > 0) {
      std::fprintf(f, ", \"taskgraph_sim_s\": %.6g, \"taskgraph_speedup\": %.4g",
                   r.taskgraph_s, r.serial_s / r.taskgraph_s);
    }
    if (r.pipelined_bf16_s > 0) {
      std::fprintf(f,
                   ", \"pipelined_bf16_sim_s\": %.6g, \"bf16_speedup\": %.4g",
                   r.pipelined_bf16_s, r.serial_s / r.pipelined_bf16_s);
    }
    std::fprintf(f, "}%s\n", sep);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* report_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pipeline-report=", 18) == 0) {
      report_path = argv[i] + 18;
    }
  }

  benchutil::PrintTitle(
      "Figure 11: scaling with device count (normalized speedup)",
      "Paper: 3.3x-3.7x (GCN) and 3.4x-3.8x (GAT) going 1 -> 4 devices.");
  const std::vector<int> w = {6, 12, 9, 9, 9, 9};
  benchutil::PrintRow({"Model", "Dataset", "1 GPU", "2 GPUs", "3 GPUs",
                       "4 GPUs"},
                      w);
  benchutil::PrintRule(w);

  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kGat}) {
    for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
      Dataset ds = benchutil::MustLoad(name);
      const int chunks_total = 4 * (kind == GnnKind::kGat
                                        ? ds.default_chunks_gat
                                        : ds.default_chunks_gcn);
      ModelConfig cfg =
          ModelConfig::Make(kind, ds.feature_dim(), ds.default_hidden_dim,
                            ds.num_classes, 2, 42);
      std::vector<std::string> row = {GnnKindName(kind), ds.name};
      double t1 = -1;
      fault::RecoveryCounters rec;
      for (int devices : {1, 2, 3, 4}) {
        EngineConfig o;
        o.num_devices = devices;
        o.chunks_per_partition =
            std::max(1, (chunks_total + devices - 1) / devices);
        o.device_capacity_bytes = 1ll << 40;
        auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, o);
        if (!e.ok()) {
          row.push_back("ERR");
          continue;
        }
        auto r = e.ValueOrDie()->RunEpoch();
        if (!r.ok()) {
          row.push_back(benchutil::TimeOrOom(r));
          continue;
        }
        const EpochStats& s = r.ValueOrDie();
        for (int k = 0; k < fault::kNumDegradeEvents; ++k) {
          rec.counts[k] += s.recovery.counts[k];
        }
        const double t = s.SimSeconds();
        if (devices == 1) t1 = t;
        row.push_back(FormatDouble(t1 / t, 2) + "x");
      }
      benchutil::PrintRow(row, w);
      // Any graceful-degradation event (retry, refetch, fallback, ...) taints
      // the timing; say so instead of letting it pass as a clean measurement.
      if (rec.total() > 0) {
        std::printf("  ^ degraded epochs: %s\n", rec.ToString().c_str());
      }
    }
  }

  // ---- Chunk-executor comparison at 4 devices -----------------------------
  benchutil::PrintTitle(
      "Fig. 11 addendum: chunk executors at 4 devices",
      "Serial = --executor serial; Pipelined = 3-lane stage pipeline and\n"
      "TaskGraph = dataflow task graph, both with max_inflight 3. Overlap is\n"
      "the busy time the pipeline hid (sim seconds). bf16 = the pipelined\n"
      "epoch with the compressed comm wire on top.");
  const std::vector<int> wp = {6, 12, 7, 10, 10, 9, 8, 10, 8, 10, 9};
  benchutil::PrintRow({"Model", "Dataset", "Chunks", "Serial", "Pipelined",
                       "Overlap", "Speedup", "TaskGraph", "tg spd", "bf16",
                       "bf16 spd"},
                      wp);
  benchutil::PrintRule(wp);

  std::vector<PipelineRow> rows;
  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kGat}) {
    for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
      Dataset ds = benchutil::MustLoad(name);
      const int chunks = kind == GnnKind::kGat ? ds.default_chunks_gat
                                               : ds.default_chunks_gcn;
      ModelConfig cfg =
          ModelConfig::Make(kind, ds.feature_dim(), ds.default_hidden_dim,
                            ds.num_classes, 2, 42);
      PipelineRow row;
      row.model = GnnKindName(kind);
      row.dataset = ds.name;
      row.chunks = chunks;
      fault::RecoveryCounters rec;
      const kernels::CommPrecision fp32 = kernels::CommPrecision::kFp32;
      row.serial_s = RunEpochSimSeconds(ds, cfg, chunks, ExecutorKind::kSerial,
                                        1, nullptr, fp32, &rec);
      row.pipelined_s =
          RunEpochSimSeconds(ds, cfg, chunks, ExecutorKind::kPipeline, 3,
                             &row.overlap_s, fp32, &rec);
      row.taskgraph_s = RunEpochSimSeconds(
          ds, cfg, chunks, ExecutorKind::kTaskGraph, 3, nullptr, fp32, &rec);
      row.pipelined_bf16_s =
          RunEpochSimSeconds(ds, cfg, chunks, ExecutorKind::kPipeline, 3,
                             nullptr, kernels::CommPrecision::kBf16, &rec);
      rows.push_back(row);
      benchutil::PrintRow(
          {row.model, row.dataset, std::to_string(chunks),
           row.serial_s > 0 ? FormatSeconds(row.serial_s) : "ERR",
           row.pipelined_s > 0 ? FormatSeconds(row.pipelined_s) : "ERR",
           row.overlap_s >= 0 ? FormatSeconds(row.overlap_s) : "-",
           row.serial_s > 0 && row.pipelined_s > 0
               ? FormatDouble(row.serial_s / row.pipelined_s, 2) + "x"
               : "-",
           row.taskgraph_s > 0 ? FormatSeconds(row.taskgraph_s) : "ERR",
           row.serial_s > 0 && row.taskgraph_s > 0
               ? FormatDouble(row.serial_s / row.taskgraph_s, 2) + "x"
               : "-",
           row.pipelined_bf16_s > 0 ? FormatSeconds(row.pipelined_bf16_s)
                                    : "ERR",
           row.serial_s > 0 && row.pipelined_bf16_s > 0
               ? FormatDouble(row.serial_s / row.pipelined_bf16_s, 2) + "x"
               : "-"},
          wp);
      if (rec.total() > 0) {
        std::printf("  ^ degraded epochs: %s\n", rec.ToString().c_str());
      }
    }
  }
  WritePipelineReport(rows, report_path);
  return 0;
}
