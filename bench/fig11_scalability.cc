// Reproduces Figure 11: scaling from 1 to 4 devices for GCN and GAT on the
// three large graphs, normalized speedup over 1 device. Claim: 3.3x-3.8x at
// 4 devices (near-linear).

#include <cstdio>

#include "bench_util.h"
#include "hongtu/engine/hongtu_engine.h"

using namespace hongtu;

int main() {
  benchutil::PrintTitle(
      "Figure 11: scaling with device count (normalized speedup)",
      "Paper: 3.3x-3.7x (GCN) and 3.4x-3.8x (GAT) going 1 -> 4 devices.");
  const std::vector<int> w = {6, 12, 9, 9, 9, 9};
  benchutil::PrintRow({"Model", "Dataset", "1 GPU", "2 GPUs", "3 GPUs",
                       "4 GPUs"},
                      w);
  benchutil::PrintRule(w);

  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kGat}) {
    for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
      Dataset ds = benchutil::MustLoad(name);
      const int chunks_total = 4 * (kind == GnnKind::kGat
                                        ? ds.default_chunks_gat
                                        : ds.default_chunks_gcn);
      ModelConfig cfg =
          ModelConfig::Make(kind, ds.feature_dim(), ds.default_hidden_dim,
                            ds.num_classes, 2, 42);
      std::vector<std::string> row = {GnnKindName(kind), ds.name};
      double t1 = -1;
      for (int devices : {1, 2, 3, 4}) {
        HongTuOptions o;
        o.num_devices = devices;
        o.chunks_per_partition =
            std::max(1, (chunks_total + devices - 1) / devices);
        o.device_capacity_bytes = 1ll << 40;
        auto e = HongTuEngine::Create(&ds, cfg, o);
        if (!e.ok()) {
          row.push_back("ERR");
          continue;
        }
        auto r = e.ValueOrDie()->TrainEpoch();
        if (!r.ok()) {
          row.push_back(benchutil::TimeOrOom(r));
          continue;
        }
        const double t = r.ValueOrDie().SimSeconds();
        if (devices == 1) t1 = t;
        row.push_back(FormatDouble(t1 / t, 2) + "x");
      }
      benchutil::PrintRow(row, w);
    }
  }
  return 0;
}
