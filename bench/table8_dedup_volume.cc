// Reproduces Table 8: the split of duplicated neighbor-access volume into
// inter-GPU (V_ori - V_p2p) and intra-GPU (V_p2p - V_ru) components, using
// the paper's chunk counts (IT 32, OPR 128, FDS 128 subgraphs -> 4 devices x
// 8/32/32 chunks). Claims: dedup removes 25%-71% of host-GPU volume, and
// ogbn-paper benefits mostly from intra-GPU reuse.

// A second section reports the same volumes as *wire bytes* per
// communication precision (kernels/codec.h): the 16-bit payloads halve
// every V_* byte count on top of what dedup removed. A final measured
// section runs one HongTu epoch per fig11 config (GCN/GAT x 3 datasets,
// 4 devices, 2 layers) at fp32 and bf16 and prints the metered h2d+ru
// bytes and epoch sim time, so the compressed wire's claimed ~2x byte cut
// is backed by the platform's own meters rather than arithmetic.

#include <cstdio>

#include "bench_util.h"
#include "hongtu/comm/dedup_plan.h"
#include "hongtu/comm/reorganize.h"
#include "hongtu/kernels/codec.h"

using namespace hongtu;

int main() {
  benchutil::PrintTitle(
      "Table 8: duplication-volume split (normalized to |V|)",
      "Paper: IT 1.6 / 0.26 (16.2%) / 0.15 (9.2%); OPR 8.5 / 0.77 (9.0%) / "
      "4.1 (48.3%);\nFDS 10.7 / 2.5 (23.3%) / 5.09 (47.6%).");
  const std::vector<int> w = {12, 7, 8, 16, 16, 10};
  benchutil::PrintRow({"Dataset", "Chunks", "V_ori", "V_ori-V_p2p (p2p)",
                       "V_p2p-V_ru (ru)", "reduction"},
                      w);
  benchutil::PrintRule(w);

  const std::vector<std::pair<std::string, int>> configs = {
      {"it-2004", 8}, {"ogbn-paper", 32}, {"friendster", 32}};
  for (const auto& [name, chunks] : configs) {
    Dataset ds = benchutil::MustLoad(name);
    auto tlr = BuildTwoLevelPartition(ds.graph, 4, chunks);
    if (!tlr.ok()) continue;
    TwoLevelPartition tl = tlr.MoveValueUnsafe();
    (void)ReorganizePartition(&tl);
    auto plan = BuildDedupPlan(tl, DedupLevel::kP2PReuse);
    if (!plan.ok()) continue;
    const CommVolumes& v = plan.ValueOrDie().volumes;
    const double nv = static_cast<double>(ds.graph.num_vertices());
    const double p2p = static_cast<double>(v.v_ori - v.v_p2p);
    const double ru = static_cast<double>(v.v_p2p - v.v_ru);
    benchutil::PrintRow(
        {ds.name, std::to_string(4 * chunks), FormatDouble(v.v_ori / nv, 2),
         FormatDouble(p2p / nv, 2) + " (" +
             FormatDouble(100.0 * p2p / v.v_ori, 1) + "%)",
         FormatDouble(ru / nv, 2) + " (" +
             FormatDouble(100.0 * ru / v.v_ori, 1) + "%)",
         FormatDouble(100.0 * (p2p + ru) / v.v_ori, 1) + "%"},
        w);
  }
  std::printf("\n'reduction' = share of host-GPU volume eliminated by "
              "deduplication (paper: 25%%-71%%).\n");

  // ---- Wire bytes per communication precision (analytic) ------------------
  benchutil::PrintTitle(
      "Table 8 addendum: V_h2d + V_ru wire bytes per comm precision",
      "Rows transferred per epoch-layer x hidden-dim row bytes. The 16-bit\n"
      "payloads halve the wire on top of dedup's row reduction.");
  const std::vector<int> wb = {12, 6, 12, 12, 12, 7};
  benchutil::PrintRow({"Dataset", "dim", "fp32 MB", "bf16 MB", "fp16 MB",
                       "ratio"},
                      wb);
  benchutil::PrintRule(wb);
  for (const auto& [name, chunks] : configs) {
    Dataset ds = benchutil::MustLoad(name);
    auto tlr = BuildTwoLevelPartition(ds.graph, 4, chunks);
    if (!tlr.ok()) continue;
    TwoLevelPartition tl = tlr.MoveValueUnsafe();
    (void)ReorganizePartition(&tl);
    auto plan = BuildDedupPlan(tl, DedupLevel::kP2PReuse);
    if (!plan.ok()) continue;
    const CommVolumes& v = plan.ValueOrDie().volumes;
    const int dim = ds.default_hidden_dim;
    const double rows = static_cast<double>(v.v_ru);
    const auto mb = [&](kernels::CommPrecision p) {
      return rows * dim * kernels::CommElemBytes(p) / 1e6;
    };
    benchutil::PrintRow(
        {ds.name, std::to_string(dim),
         FormatDouble(mb(kernels::CommPrecision::kFp32), 2),
         FormatDouble(mb(kernels::CommPrecision::kBf16), 2),
         FormatDouble(mb(kernels::CommPrecision::kFp16), 2),
         FormatDouble(mb(kernels::CommPrecision::kFp32) /
                          mb(kernels::CommPrecision::kBf16),
                      2) +
             "x"},
        wb);
  }

  // ---- Measured: fp32 vs bf16 byte meters on the fig11 configs ------------
  benchutil::PrintTitle(
      "Table 8 addendum: metered epoch bytes, fp32 vs bf16 wire",
      "One HongTu epoch per fig11 config (4 devices, 2 layers). h2d+ru are\n"
      "the platform's byte meters over every vertex-row stream; the bf16\n"
      "column must come in >= 1.9x under fp32, with the saved wire time\n"
      "visible in the sim-seconds column.");
  const std::vector<int> wm = {6, 12, 11, 11, 7, 9, 9, 8};
  benchutil::PrintRow({"Model", "Dataset", "fp32 MB", "bf16 MB", "ratio",
                       "fp32 s", "bf16 s", "speedup"},
                      wm);
  benchutil::PrintRule(wm);
  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kGat}) {
    for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
      Dataset ds = benchutil::MustLoad(name);
      const int chunks = kind == GnnKind::kGat ? ds.default_chunks_gat
                                               : ds.default_chunks_gcn;
      ModelConfig cfg =
          ModelConfig::Make(kind, ds.feature_dim(), ds.default_hidden_dim,
                            ds.num_classes, 2, 42);
      double mbytes[2] = {0, 0};
      double secs[2] = {0, 0};
      bool ok = true;
      const kernels::CommPrecision precisions[2] = {
          kernels::CommPrecision::kFp32, kernels::CommPrecision::kBf16};
      for (int p = 0; p < 2 && ok; ++p) {
        EngineConfig o;
        o.num_devices = 4;
        o.chunks_per_partition = chunks;
        o.device_capacity_bytes = 1ll << 40;
        o.comm_precision = precisions[p];
        auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, o);
        if (!e.ok()) { ok = false; break; }
        auto r = e.ValueOrDie()->RunEpoch();
        if (!r.ok()) { ok = false; break; }
        mbytes[p] = static_cast<double>(r.ValueOrDie().bytes.h2d +
                                        r.ValueOrDie().bytes.ru) / 1e6;
        secs[p] = r.ValueOrDie().SimSeconds();
      }
      if (!ok) {
        benchutil::PrintRow({GnnKindName(kind), ds.name, "ERR", "", "", "",
                             "", ""},
                            wm);
        continue;
      }
      benchutil::PrintRow(
          {GnnKindName(kind), ds.name, FormatDouble(mbytes[0], 1),
           FormatDouble(mbytes[1], 1),
           FormatDouble(mbytes[0] / mbytes[1], 2) + "x",
           FormatSeconds(secs[0]), FormatSeconds(secs[1]),
           FormatDouble(secs[0] / secs[1], 2) + "x"},
          wm);
    }
  }
  return 0;
}
