// Reproduces Table 8: the split of duplicated neighbor-access volume into
// inter-GPU (V_ori - V_p2p) and intra-GPU (V_p2p - V_ru) components, using
// the paper's chunk counts (IT 32, OPR 128, FDS 128 subgraphs -> 4 devices x
// 8/32/32 chunks). Claims: dedup removes 25%-71% of host-GPU volume, and
// ogbn-paper benefits mostly from intra-GPU reuse.

#include <cstdio>

#include "bench_util.h"
#include "hongtu/comm/dedup_plan.h"
#include "hongtu/comm/reorganize.h"

using namespace hongtu;

int main() {
  benchutil::PrintTitle(
      "Table 8: duplication-volume split (normalized to |V|)",
      "Paper: IT 1.6 / 0.26 (16.2%) / 0.15 (9.2%); OPR 8.5 / 0.77 (9.0%) / "
      "4.1 (48.3%);\nFDS 10.7 / 2.5 (23.3%) / 5.09 (47.6%).");
  const std::vector<int> w = {12, 7, 8, 16, 16, 10};
  benchutil::PrintRow({"Dataset", "Chunks", "V_ori", "V_ori-V_p2p (p2p)",
                       "V_p2p-V_ru (ru)", "reduction"},
                      w);
  benchutil::PrintRule(w);

  const std::vector<std::pair<std::string, int>> configs = {
      {"it-2004", 8}, {"ogbn-paper", 32}, {"friendster", 32}};
  for (const auto& [name, chunks] : configs) {
    Dataset ds = benchutil::MustLoad(name);
    auto tlr = BuildTwoLevelPartition(ds.graph, 4, chunks);
    if (!tlr.ok()) continue;
    TwoLevelPartition tl = tlr.MoveValueUnsafe();
    (void)ReorganizePartition(&tl);
    auto plan = BuildDedupPlan(tl, DedupLevel::kP2PReuse);
    if (!plan.ok()) continue;
    const CommVolumes& v = plan.ValueOrDie().volumes;
    const double nv = static_cast<double>(ds.graph.num_vertices());
    const double p2p = static_cast<double>(v.v_ori - v.v_p2p);
    const double ru = static_cast<double>(v.v_p2p - v.v_ru);
    benchutil::PrintRow(
        {ds.name, std::to_string(4 * chunks), FormatDouble(v.v_ori / nv, 2),
         FormatDouble(p2p / nv, 2) + " (" +
             FormatDouble(100.0 * p2p / v.v_ori, 1) + "%)",
         FormatDouble(ru / nv, 2) + " (" +
             FormatDouble(100.0 * ru / v.v_ori, 1) + "%)",
         FormatDouble(100.0 * (p2p + ru) / v.v_ori, 1) + "%"},
        w);
  }
  std::printf("\n'reduction' = share of host-GPU volume eliminated by "
              "deduplication (paper: 25%%-71%%).\n");
  return 0;
}
