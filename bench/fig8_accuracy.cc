// Reproduces Figure 8: validation-accuracy curves of full-graph training
// (DGL-FG / HongTu-FG, which must coincide) versus mini-batch training
// (DGL-MB) for GCN on reddit and ogbn-products over 100 epochs.
// Claims: HongTu matches the full-graph reference exactly; on the
// reddit-like graph full-graph training reaches at least mini-batch
// accuracy.

#include <cstdio>

#include "bench_util.h"

using namespace hongtu;

namespace {

int EpochsToRun() {
  const char* s = std::getenv("HONGTU_FIG8_EPOCHS");
  if (s != nullptr && std::atoi(s) > 0) return std::atoi(s);
  return 60;
}

}  // namespace

int main() {
  const int epochs = EpochsToRun();
  for (const char* name : {"reddit", "ogbn-products"}) {
    Dataset ds = benchutil::MustLoad(name, std::min(benchutil::Scale(), 0.3));
    ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                                        ds.default_hidden_dim, ds.num_classes,
                                        2, 2024);
    benchutil::PrintTitle(
        std::string("Figure 8: GCN validation accuracy on ") + ds.name,
        "Columns: epoch, DGL-FG (in-memory reference), HongTu-FG, DGL-MB "
        "(fanout 10).");

    EngineConfig imo;
    imo.num_devices = 1;
    imo.device_capacity_bytes = 1ll << 40;
    auto ref = Engine::Create(EngineKind::kInMemory, &ds, cfg, imo);
    EngineConfig hto;
    hto.num_devices = 4;
    hto.chunks_per_partition = 2;
    hto.device_capacity_bytes = 1ll << 40;
    auto ht = Engine::Create(EngineKind::kHongTu, &ds, cfg, hto);
    EngineConfig mbo;
    mbo.num_devices = 4;
    mbo.device_capacity_bytes = 1ll << 40;
    mbo.batch_size = 256;
    auto mb = Engine::Create(EngineKind::kMiniBatch, &ds, cfg, mbo);
    if (!ref.ok() || !ht.ok() || !mb.ok()) {
      std::fprintf(stderr, "engine creation failed\n");
      return 1;
    }

    const std::vector<int> w = {6, 9, 10, 9};
    benchutil::PrintRow({"Epoch", "DGL-FG", "HongTu-FG", "DGL-MB"}, w);
    benchutil::PrintRule(w);
    for (int e = 1; e <= epochs; ++e) {
      HT_CHECK_OK(ref.ValueOrDie()->RunEpoch().status());
      HT_CHECK_OK(ht.ValueOrDie()->RunEpoch().status());
      HT_CHECK_OK(mb.ValueOrDie()->RunEpoch().status());
      if (e % 10 == 0 || e == 1) {
        auto a = ref.ValueOrDie()->EvaluateAccuracy(SplitRole::kVal);
        auto b = ht.ValueOrDie()->EvaluateAccuracy(SplitRole::kVal);
        auto c = mb.ValueOrDie()->EvaluateAccuracy(SplitRole::kVal);
        HT_CHECK_OK(a.status());
        HT_CHECK_OK(b.status());
        HT_CHECK_OK(c.status());
        benchutil::PrintRow({std::to_string(e),
                             FormatDouble(a.ValueOrDie(), 3),
                             FormatDouble(b.ValueOrDie(), 3),
                             FormatDouble(c.ValueOrDie(), 3)},
                            w);
      }
    }
    auto va = ref.ValueOrDie()->EvaluateAccuracy(SplitRole::kVal);
    auto ta = ref.ValueOrDie()->EvaluateAccuracy(SplitRole::kTest);
    auto vb = ht.ValueOrDie()->EvaluateAccuracy(SplitRole::kVal);
    auto tb = ht.ValueOrDie()->EvaluateAccuracy(SplitRole::kTest);
    auto vc = mb.ValueOrDie()->EvaluateAccuracy(SplitRole::kVal);
    auto tc = mb.ValueOrDie()->EvaluateAccuracy(SplitRole::kTest);
    std::printf("final (val, test): DGL-FG (%.3f, %.3f)  HongTu-FG "
                "(%.3f, %.3f)  DGL-MB (%.3f, %.3f)\n",
                va.ValueOrDie(), ta.ValueOrDie(), vb.ValueOrDie(),
                tb.ValueOrDie(), vc.ValueOrDie(), tc.ValueOrDie());
  }
  return 0;
}
