// Reproduces Table 7: comparison with DistGNN on a 16-node CPU cluster for
// the three large graphs, GCN and GAT, 2/3/4 layers. Roles: DistGNN ->
// CpuClusterEngine(16 nodes, 512 GB each, 20 Gbps), HongTu -> HongTuEngine
// on 4 devices. Claims: HongTu is roughly 8x-20x faster; DistGNN OOMs on
// most GAT workloads and the 4-layer GCN on ogbn-paper.
//
// A second section leaves the analytic model behind and runs the real
// multi-process cluster backend (net/cluster.h): a coordinator forks one
// worker process per partition, the workers train a GCN for real over the
// resilient RPC transport, and measured wall-clock plus merged
// DegradationPolicy recovery counters land in BENCH_dist.json (the ISSUE 8
// acceptance artifact). Flags: --dist-report=PATH --dist-transport=uds|tcp
// --dist-workers=N --dist-epochs=N --dist-scale=S --skip-dist.
//
// --validate-sim closes the loop between the analytic interconnect model
// and the measured backend: the same dataset/model/partition count is run
// through the analytic CpuClusterEngine and the modeled seconds/epoch is
// compared against the real cluster's measured wall. The run fails when
// modeled/measured falls outside [1/tol, tol] (--validate-tol=, default 8).
// The sim constants are flag-overridable for recalibration experiments:
// --sim-node-flops=F --sim-membw=B --sim-netbw=B (bytes/s),
// --sim-scaling-exponent=E (default 1 here: the "cluster" is N processes
// on one shared-memory host, not an MPI fabric, so the analytic model's
// pessimistic 0.25 exponent does not apply) and --sim-rpc-latency=S (the
// per-round framed-RPC cost the bandwidth-only model omits).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "hongtu/engine/cpu_cluster_engine.h"
#include "hongtu/net/cluster.h"

using namespace hongtu;

namespace {

struct Cell {
  std::string text;
  double seconds = -1;  // <0 => not available (OOM/ERR)
};

Cell RunCpu(const Dataset& ds, const ModelConfig& cfg, int layers,
            ModelKind kind) {
  EngineConfig o;
  o.num_nodes = 16;
  o.node_memory_bytes = benchutil::ScaledNodeCapacity(ds, layers, kind);
  auto e = Engine::Create(EngineKind::kCpuCluster, &ds, cfg, o);
  if (!e.ok()) return {"ERR", -1};
  auto r = e.ValueOrDie()->RunEpoch();
  if (!r.ok()) return {benchutil::TimeOrOom(r), -1};
  return {benchutil::TimeOrOom(r), r.ValueOrDie().SimSeconds()};
}

Cell RunHongTu(const Dataset& ds, const ModelConfig& cfg, int layers,
               bool gat) {
  EngineConfig o;
  o.num_devices = 4;
  o.chunks_per_partition =
      gat ? ds.default_chunks_gat : ds.default_chunks_gcn;
  o.device_capacity_bytes =
      benchutil::ScaledDeviceCapacity(ds, layers,
                                      gat ? ModelKind::kGat : ModelKind::kGcn);
  // On OOM, tune the chunk count up (§4.3) before giving up.
  for (int mult = 1; mult <= 4; mult *= 2) {
    EngineConfig attempt = o;
    attempt.chunks_per_partition = o.chunks_per_partition * mult;
    auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, attempt);
    if (!e.ok()) return {"ERR", -1};
    auto r = e.ValueOrDie()->RunEpoch();
    if (r.ok()) {
      return {benchutil::TimeOrOom(r), r.ValueOrDie().SimSeconds()};
    }
    if (!r.status().IsOutOfMemory() || mult == 4) {
      return {benchutil::TimeOrOom(r), -1};
    }
  }
  return {"OOM", -1};
}

// ---- Real multi-process addendum -------------------------------------------

struct DistEpoch {
  double loss = 0;
  double acc = 0;
  double wall_s = 0;
  fault::RecoveryCounters recovery;
};

struct DistRun {
  std::string transport;
  int workers = 0;
  std::string dataset;
  double scale = 0;
  int chunks = 0;
  std::vector<DistEpoch> epochs;
  double val_accuracy = -1;
  int respawns = 0;
  bool ok = false;
  std::string error;
};

DistRun RunDistributed(const std::string& transport, int workers, int epochs,
                       const std::string& dataset, double scale, int chunks) {
  DistRun out;
  out.transport = transport;
  out.workers = workers;
  out.dataset = dataset;
  out.scale = scale;
  out.chunks = chunks;

  auto dsr = LoadDatasetScaled(dataset, scale);
  if (!dsr.ok()) {
    out.error = dsr.status().ToString();
    return out;
  }
  const Dataset ds = dsr.MoveValueUnsafe();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                                      /*hidden_dim=*/32, ds.num_classes,
                                      /*layers=*/2, /*seed=*/2024);
  EngineConfig o;
  o.cluster_transport = transport;
  o.cluster_workers = workers;
  o.chunks_per_partition = chunks;
  auto er = CpuClusterEngine::Create(&ds, cfg, o);
  if (!er.ok()) {
    out.error = er.status().ToString();
    return out;
  }
  CpuClusterEngine* engine = er.ValueOrDie().get();
  for (int e = 0; e < epochs; ++e) {
    auto sr = engine->RunEpoch();
    if (!sr.ok()) {
      out.error = sr.status().ToString();
      return out;
    }
    const EpochStats& s = sr.ValueOrDie();
    DistEpoch de;
    de.loss = s.loss;
    de.acc = s.train_accuracy;
    de.wall_s = s.wall_seconds;
    de.recovery = s.recovery;
    out.epochs.push_back(de);
  }
  auto ar = engine->EvaluateAccuracy(SplitRole::kVal);
  if (ar.ok()) out.val_accuracy = ar.ValueOrDie();
  out.respawns = engine->coordinator()->respawn_count();
  out.ok = true;
  return out;
}

void WriteDistReport(const DistRun& r, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "table7: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"dist\",\n");
  std::fprintf(f, "  \"transport\": \"%s\",\n  \"workers\": %d,\n",
               r.transport.c_str(), r.workers);
  std::fprintf(f, "  \"dataset\": \"%s\",\n  \"scale\": %g,\n",
               r.dataset.c_str(), r.scale);
  std::fprintf(f, "  \"chunks\": %d,\n", r.chunks);
  if (!r.ok) {
    // A failed run must not masquerade as data.
    std::fprintf(f, "  \"error\": \"%s\"\n}\n", r.error.c_str());
    std::fclose(f);
    std::printf("\nWrote %s (run failed)\n", path);
    return;
  }
  double total_wall = 0;
  fault::RecoveryCounters totals;
  std::fprintf(f, "  \"epochs\": [\n");
  for (size_t i = 0; i < r.epochs.size(); ++i) {
    const DistEpoch& e = r.epochs[i];
    total_wall += e.wall_s;
    for (int k = 0; k < fault::kNumDegradeEvents; ++k) {
      totals.counts[k] += e.recovery.counts[k];
    }
    std::fprintf(f,
                 "    {\"epoch\": %zu, \"loss\": %.6g, "
                 "\"train_accuracy\": %.4g, \"wall_s\": %.6g, "
                 "\"recovery_events\": %lld}%s\n",
                 i, e.loss, e.acc, e.wall_s,
                 static_cast<long long>(e.recovery.total()),
                 i + 1 < r.epochs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"total_wall_s\": %.6g,\n", total_wall);
  if (r.val_accuracy >= 0) {
    std::fprintf(f, "  \"val_accuracy\": %.4g,\n", r.val_accuracy);
  }
  std::fprintf(f, "  \"respawns\": %d,\n", r.respawns);
  std::fprintf(f, "  \"recovery_events\": %lld,\n",
               static_cast<long long>(totals.total()));
  std::fprintf(f, "  \"recovery\": \"%s\"\n}\n", totals.ToString().c_str());
  std::fclose(f);
  std::printf("\nWrote %s\n", path);
}

// ---- Analytic-vs-measured validation ---------------------------------------

struct SimOverrides {
  double node_flops = -1;
  double node_mem_bw = -1;
  double network_bandwidth = -1;
  double scaling_exponent = 1.0;
  /// Per synchronous RPC round, seconds. The interconnect model charges
  /// bandwidth only; the real backend serializes framed round-trips (CRC,
  /// locks, wakeups), which dominate small-scale epochs. ~100us/round on a
  /// loopback/UDS transport.
  double rpc_latency = 100e-6;
};

/// Runs the analytic CpuClusterEngine on the measured run's exact workload
/// (same dataset, model, partition count) and returns modeled seconds/epoch
/// (<0 on error).
double ModeledEpochSeconds(const DistRun& r, const SimOverrides& ov,
                           std::string* err) {
  auto dsr = LoadDatasetScaled(r.dataset, r.scale);
  if (!dsr.ok()) {
    *err = dsr.status().ToString();
    return -1;
  }
  const Dataset ds = dsr.MoveValueUnsafe();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                                      /*hidden_dim=*/32, ds.num_classes,
                                      /*layers=*/2, /*seed=*/2024);
  EngineConfig o;
  o.cluster_transport = "";  // force the analytic path, whatever the env says
  o.num_nodes = r.workers;
  o.node_memory_bytes = 1ll << 34;  // validation compares time, not capacity
  o.scaling_exponent = ov.scaling_exponent;
  if (ov.node_flops > 0) o.node_flops = ov.node_flops;
  if (ov.node_mem_bw > 0) o.node_mem_bw = ov.node_mem_bw;
  if (ov.network_bandwidth > 0) o.network_bandwidth = ov.network_bandwidth;
  auto e = Engine::Create(EngineKind::kCpuCluster, &ds, cfg, o);
  if (!e.ok()) {
    *err = e.status().ToString();
    return -1;
  }
  auto st = e.ValueOrDie()->RunEpoch();
  if (!st.ok()) {
    *err = st.status().ToString();
    return -1;
  }
  return st.ValueOrDie().SimSeconds();
}

/// Modeled-vs-measured comparison; returns the process exit code.
int ValidateSim(const DistRun& r, const SimOverrides& ov, double tol) {
  benchutil::PrintTitle(
      "Sim validation: analytic model vs measured cluster backend",
      "Same dataset, model and partition count through both paths. The\n"
      "measured number is the fastest epoch (steady state, free of one-off\n"
      "startup costs the analytic model does not represent).");
  if (r.epochs.empty()) {
    std::printf("validate-sim: no measured epochs\n");
    return 1;
  }
  double measured = r.epochs[0].wall_s;
  for (const DistEpoch& e : r.epochs) measured = std::min(measured, e.wall_s);
  std::string err;
  const double sim = ModeledEpochSeconds(r, ov, &err);
  if (sim <= 0) {
    std::printf("validate-sim: analytic run failed: %s\n", err.c_str());
    return 1;
  }
  // Synchronous RPC rounds per epoch the bandwidth model does not charge:
  // per layer and chunk batch, every worker fetches transition rows on the
  // forward pass and pushes gradients on the backward pass to each of its
  // W-1 peers, and the coordinator adds a weights broadcast + gradient
  // reduce round.
  const int layers = 2;
  const int rounds = layers * r.chunks * (r.workers - 1) * 2 + 2;
  const double modeled = sim + rounds * ov.rpc_latency;
  const double ratio = modeled / measured;
  std::printf("modeled %s/epoch (bandwidth %s + %d RPC rounds x %s), "
              "measured %s/epoch\n  -> modeled/measured = %.3f "
              "(tolerance band [%.3f, %.1f])\n",
              FormatSeconds(modeled).c_str(), FormatSeconds(sim).c_str(),
              rounds, FormatSeconds(ov.rpc_latency).c_str(),
              FormatSeconds(measured).c_str(), ratio, 1.0 / tol, tol);
  std::printf("constants: node_flops=%.3g mem_bw=%.3g net_bw=%.3g B/s "
              "scaling_exponent=%.2f\n",
              ov.node_flops > 0 ? ov.node_flops : EngineConfig().node_flops,
              ov.node_mem_bw > 0 ? ov.node_mem_bw : EngineConfig().node_mem_bw,
              ov.network_bandwidth > 0 ? ov.network_bandwidth
                                       : EngineConfig().network_bandwidth,
              ov.scaling_exponent);
  if (ratio < 1.0 / tol || ratio > tol) {
    std::printf("validate-sim: FAIL — model and measurement disagree beyond "
                "%.1fx; recalibrate with --sim-node-flops/--sim-membw/"
                "--sim-netbw\n", tol);
    return 1;
  }
  std::printf("validate-sim: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Must run before anything else: under HONGTU_DIST_ROLE=worker this
  // process IS a cluster worker and never reaches the benchmark code.
  net::MaybeRunClusterWorker();

  const char* dist_report = "BENCH_dist.json";
  std::string dist_transport = "uds";
  int dist_workers = 4;
  int dist_epochs = 2;
  double dist_scale = 0.05;
  bool skip_dist = false;
  bool validate_sim = false;
  double validate_tol = 8.0;
  SimOverrides ov;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--dist-report=", 14) == 0) dist_report = a + 14;
    else if (std::strncmp(a, "--dist-transport=", 17) == 0)
      dist_transport = a + 17;
    else if (std::strncmp(a, "--dist-workers=", 15) == 0)
      dist_workers = std::atoi(a + 15);
    else if (std::strncmp(a, "--dist-epochs=", 14) == 0)
      dist_epochs = std::atoi(a + 14);
    else if (std::strncmp(a, "--dist-scale=", 13) == 0)
      dist_scale = std::atof(a + 13);
    else if (std::strcmp(a, "--skip-dist") == 0) skip_dist = true;
    else if (std::strcmp(a, "--validate-sim") == 0) validate_sim = true;
    else if (std::strncmp(a, "--validate-tol=", 15) == 0)
      validate_tol = std::atof(a + 15);
    else if (std::strncmp(a, "--sim-node-flops=", 17) == 0)
      ov.node_flops = std::atof(a + 17);
    else if (std::strncmp(a, "--sim-membw=", 12) == 0)
      ov.node_mem_bw = std::atof(a + 12);
    else if (std::strncmp(a, "--sim-netbw=", 12) == 0)
      ov.network_bandwidth = std::atof(a + 12);
    else if (std::strncmp(a, "--sim-scaling-exponent=", 23) == 0)
      ov.scaling_exponent = std::atof(a + 23);
    else if (std::strncmp(a, "--sim-rpc-latency=", 18) == 0)
      ov.rpc_latency = std::atof(a + 18);
  }
  if (validate_sim && skip_dist) {
    std::fprintf(stderr,
                 "--validate-sim needs the measured run; drop --skip-dist\n");
    return 2;
  }

  benchutil::PrintTitle(
      "Table 7: vs DistGNN on a 16-node CPU cluster",
      "Simulated seconds/epoch (speedup in parentheses). Paper: 7.8x-11.8x "
      "(GCN),\n~20x (GAT); DistGNN OOMs on most GAT rows and 4-layer GCN on "
      "ogbn-paper.");
  const std::vector<int> w = {7, 6, 12, 12, 16};
  benchutil::PrintRow({"Layers", "Model", "Dataset", "DistGNN", "HongTu"}, w);
  benchutil::PrintRule(w);

  for (int layers : {2, 3, 4}) {
    for (GnnKind kind : {GnnKind::kGcn, GnnKind::kGat}) {
      for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
        Dataset ds = benchutil::MustLoad(name);
        ModelConfig cfg =
            ModelConfig::Make(kind, ds.feature_dim(), ds.default_hidden_dim,
                              ds.num_classes, layers, 42);
        const ModelKind mk =
            kind == GnnKind::kGat ? ModelKind::kGat : ModelKind::kGcn;
        const Cell cpu = RunCpu(ds, cfg, layers, mk);
        Cell ht = RunHongTu(ds, cfg, layers, kind == GnnKind::kGat);
        if (cpu.seconds > 0 && ht.seconds > 0) {
          ht.text += " (" + FormatDouble(cpu.seconds / ht.seconds, 1) + "x)";
        }
        benchutil::PrintRow({std::to_string(layers), GnnKindName(kind),
                             ds.name, cpu.text, ht.text},
                            w);
      }
    }
  }
  std::printf("\nMonetary-cost note (paper §7.2): 16 ecs.r5.16xlarge nodes "
              "cost 4.16x the price\nof one 4xA100 node per hour, so each "
              "HongTu speedup multiplies into cost savings.\n");

  // ---- Real multi-process cluster run -------------------------------------
  if (skip_dist) return 0;
  benchutil::PrintTitle(
      "Table 7 addendum: real multi-process cluster backend",
      "Measured wall-clock (not simulated): one worker process per "
      "partition,\ntransition rows and gradients exchanged over the "
      "resilient RPC transport.\nRecovery = DegradationPolicy counters "
      "merged across coordinator and workers.");
  DistRun dr = RunDistributed(dist_transport, dist_workers, dist_epochs,
                              "reddit", dist_scale, /*chunks=*/2);
  if (!dr.ok) {
    std::printf("distributed run failed: %s\n", dr.error.c_str());
    WriteDistReport(dr, dist_report);
    return 1;
  }
  std::printf("transport=%s workers=%d dataset=%s scale=%g\n",
              dr.transport.c_str(), dr.workers, dr.dataset.c_str(), dr.scale);
  const std::vector<int> wd = {6, 9, 8, 10, 30};
  benchutil::PrintRow({"Epoch", "Loss", "Acc", "Wall", "Recovery"}, wd);
  benchutil::PrintRule(wd);
  double total_wall = 0;
  for (size_t e = 0; e < dr.epochs.size(); ++e) {
    const DistEpoch& de = dr.epochs[e];
    total_wall += de.wall_s;
    benchutil::PrintRow(
        {std::to_string(e), FormatDouble(de.loss, 4), FormatDouble(de.acc, 3),
         FormatSeconds(de.wall_s),
         de.recovery.total() > 0 ? de.recovery.ToString() : "clean"},
        wd);
  }
  std::printf("total wall: %s   val accuracy: %s   respawns: %d\n",
              FormatSeconds(total_wall).c_str(),
              dr.val_accuracy >= 0 ? FormatDouble(dr.val_accuracy, 3).c_str()
                                   : "-",
              dr.respawns);
  WriteDistReport(dr, dist_report);
  if (validate_sim) return ValidateSim(dr, ov, validate_tol);
  return 0;
}
