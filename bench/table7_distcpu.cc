// Reproduces Table 7: comparison with DistGNN on a 16-node CPU cluster for
// the three large graphs, GCN and GAT, 2/3/4 layers. Roles: DistGNN ->
// CpuClusterEngine(16 nodes, 512 GB each, 20 Gbps), HongTu -> HongTuEngine
// on 4 devices. Claims: HongTu is roughly 8x-20x faster; DistGNN OOMs on
// most GAT workloads and the 4-layer GCN on ogbn-paper.

#include <cstdio>

#include "bench_util.h"

using namespace hongtu;

namespace {

struct Cell {
  std::string text;
  double seconds = -1;  // <0 => not available (OOM/ERR)
};

Cell RunCpu(const Dataset& ds, const ModelConfig& cfg, int layers,
            ModelKind kind) {
  EngineConfig o;
  o.num_nodes = 16;
  o.node_memory_bytes = benchutil::ScaledNodeCapacity(ds, layers, kind);
  auto e = Engine::Create(EngineKind::kCpuCluster, &ds, cfg, o);
  if (!e.ok()) return {"ERR", -1};
  auto r = e.ValueOrDie()->RunEpoch();
  if (!r.ok()) return {benchutil::TimeOrOom(r), -1};
  return {benchutil::TimeOrOom(r), r.ValueOrDie().SimSeconds()};
}

Cell RunHongTu(const Dataset& ds, const ModelConfig& cfg, int layers,
               bool gat) {
  EngineConfig o;
  o.num_devices = 4;
  o.chunks_per_partition =
      gat ? ds.default_chunks_gat : ds.default_chunks_gcn;
  o.device_capacity_bytes =
      benchutil::ScaledDeviceCapacity(ds, layers,
                                      gat ? ModelKind::kGat : ModelKind::kGcn);
  // On OOM, tune the chunk count up (§4.3) before giving up.
  for (int mult = 1; mult <= 4; mult *= 2) {
    EngineConfig attempt = o;
    attempt.chunks_per_partition = o.chunks_per_partition * mult;
    auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, attempt);
    if (!e.ok()) return {"ERR", -1};
    auto r = e.ValueOrDie()->RunEpoch();
    if (r.ok()) {
      return {benchutil::TimeOrOom(r), r.ValueOrDie().SimSeconds()};
    }
    if (!r.status().IsOutOfMemory() || mult == 4) {
      return {benchutil::TimeOrOom(r), -1};
    }
  }
  return {"OOM", -1};
}

}  // namespace

int main() {
  benchutil::PrintTitle(
      "Table 7: vs DistGNN on a 16-node CPU cluster",
      "Simulated seconds/epoch (speedup in parentheses). Paper: 7.8x-11.8x "
      "(GCN),\n~20x (GAT); DistGNN OOMs on most GAT rows and 4-layer GCN on "
      "ogbn-paper.");
  const std::vector<int> w = {7, 6, 12, 12, 16};
  benchutil::PrintRow({"Layers", "Model", "Dataset", "DistGNN", "HongTu"}, w);
  benchutil::PrintRule(w);

  for (int layers : {2, 3, 4}) {
    for (GnnKind kind : {GnnKind::kGcn, GnnKind::kGat}) {
      for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
        Dataset ds = benchutil::MustLoad(name);
        ModelConfig cfg =
            ModelConfig::Make(kind, ds.feature_dim(), ds.default_hidden_dim,
                              ds.num_classes, layers, 42);
        const ModelKind mk =
            kind == GnnKind::kGat ? ModelKind::kGat : ModelKind::kGcn;
        const Cell cpu = RunCpu(ds, cfg, layers, mk);
        Cell ht = RunHongTu(ds, cfg, layers, kind == GnnKind::kGat);
        if (cpu.seconds > 0 && ht.seconds > 0) {
          ht.text += " (" + FormatDouble(cpu.seconds / ht.seconds, 1) + "x)";
        }
        benchutil::PrintRow({std::to_string(layers), GnnKindName(kind),
                             ds.name, cpu.text, ht.text},
                            w);
      }
    }
  }
  std::printf("\nMonetary-cost note (paper §7.2): 16 ecs.r5.16xlarge nodes "
              "cost 4.16x the price\nof one 4xA100 node per hour, so each "
              "HongTu speedup multiplies into cost savings.\n");
  return 0;
}
