// Reproduces Table 9: the one-off preprocessing cost of communication
// deduplication versus 100 epochs of 2-layer GCN training, with and without
// CD. Claim: preprocessing adds at most ~1.5% while the deduplicated runs
// are substantially faster.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "hongtu/engine/hongtu_engine.h"

using namespace hongtu;

namespace {

/// Simulated seconds for `epochs` epochs plus preprocessing wall seconds.
struct RunResult {
  double epochs_seconds = -1;
  double preprocess_seconds = 0;
};

RunResult Run(const Dataset& ds, bool dedup, int epochs) {
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                                      ds.default_hidden_dim, ds.num_classes,
                                      2, 42);
  EngineConfig o;
  o.num_devices = 4;
  o.chunks_per_partition = ds.default_chunks_gcn;
  o.device_capacity_bytes = 1ll << 40;
  o.dedup = dedup ? DedupLevel::kP2PReuse : DedupLevel::kNone;
  o.reorganize = dedup;
  auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, o);
  if (!e.ok()) return {};
  // Table 9 compares wall-clock quantities: preprocessing runs once on the
  // real host, so the 100-epoch cost must be wall-clock as well. Use the
  // median of three measured epochs to smooth scheduler noise.
  double best = 1e30;
  for (int k = 0; k < 3; ++k) {
    auto r = e.ValueOrDie()->RunEpoch();
    if (!r.ok()) return {};
    best = std::min(best, r.ValueOrDie().wall_seconds);
  }
  RunResult out;
  out.epochs_seconds = best * epochs;
  // Preprocessing cost is a HongTu-specific metric, not part of the
  // abstract Engine surface.
  const auto* hongtu = dynamic_cast<const HongTuEngine*>(e.ValueOrDie().get());
  out.preprocess_seconds =
      hongtu != nullptr ? hongtu->dedup_preprocess_seconds() : 0.0;
  return out;
}

}  // namespace

int main() {
  const int epochs = 100;
  benchutil::PrintTitle(
      "Table 9: cost of communication deduplication (100-epoch 2-layer GCN)",
      "Paper: CD speeds up the run while preprocessing adds <= 1.5% overhead.\n"
      "All quantities are host wall-clock (the dedup benefit in *simulated* time\n"
      "is shown by Fig. 9; here the claim under test is the preprocessing cost).");
  const std::vector<int> w = {16, 12, 12, 12};
  benchutil::PrintRow({"Engine", "it-2004", "ogbn-paper", "friendster"}, w);
  benchutil::PrintRule(w);

  std::vector<std::string> wo = {"HongTu w/o CD"}, wi = {"HongTu w/ CD"},
                           pre = {"Preprocessing"}, ovh = {"Overhead"};
  for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
    Dataset ds = benchutil::MustLoad(name);
    const RunResult base = Run(ds, /*dedup=*/false, epochs);
    const RunResult cd = Run(ds, /*dedup=*/true, epochs);
    wo.push_back(FormatDouble(base.epochs_seconds, 1) + "s");
    wi.push_back(FormatDouble(cd.epochs_seconds, 1) + "s");
    pre.push_back("+" + FormatDouble(cd.preprocess_seconds, 2) + "s");
    ovh.push_back(
        FormatDouble(100.0 * cd.preprocess_seconds /
                         std::max(1e-9, cd.epochs_seconds), 2) + "%");
  }
  const std::vector<int> cw = {16, 12, 12, 12};
  benchutil::PrintRow(wo, cw);
  benchutil::PrintRow(wi, cw);
  benchutil::PrintRow(pre, cw);
  benchutil::PrintRow(ovh, cw);
  std::printf("\nOverhead = preprocessing / 100-epoch wall runtime "
              "(paper: <= 1.5%%).\n");
  return 0;
}
