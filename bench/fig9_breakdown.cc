// Reproduces Figure 9: per-component time breakdown (GPU / H2D / D2D / CPU)
// of HongTu under the communication-deduplication ablation — Baseline
// (whole neighbor set per chunk), +P2P (inter-GPU dedup), +RU (adds
// intra-GPU reuse) — for GCN and GAT with 2/3/4 layers on the three large
// graphs. Claims: each level shrinks the communication share; overall
// speedup of +RU over Baseline is 1.3x-3.4x; GAT's GPU share is much larger
// than GCN's.

#include <cstdio>

#include "bench_util.h"

using namespace hongtu;

int main() {
  benchutil::PrintTitle(
      "Figure 9: time breakdown under the dedup ablation (sim seconds)",
      "Rows per (model, dataset, layers): Baseline -> +P2P -> +RU.\n"
      "Expected: H2D shrinks at each step; total speedup 1.3x-3.4x; GAT has "
      "a larger GPU share.\n"
      "Components are busy seconds; Overlap is the share the pipelined\n"
      "executor hid behind compute, and Total = components - Overlap.");
  const std::vector<int> w = {6, 12, 7, 9, 8, 8, 8, 8, 9, 9, 9};
  benchutil::PrintRow({"Model", "Dataset", "Layers", "Level", "GPU", "H2D",
                       "D2D", "CPU", "Overlap", "Total", "Speedup"},
                      w);
  benchutil::PrintRule(w);

  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kGat}) {
    for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
      Dataset ds = benchutil::MustLoad(name);
      const int chunks = kind == GnnKind::kGat ? ds.default_chunks_gat
                                               : ds.default_chunks_gcn;
      for (int layers : {2, 3, 4}) {
        ModelConfig cfg =
            ModelConfig::Make(kind, ds.feature_dim(), ds.default_hidden_dim,
                              ds.num_classes, layers, 42);
        double baseline_total = -1;
        for (DedupLevel level : {DedupLevel::kNone, DedupLevel::kP2P,
                                 DedupLevel::kP2PReuse}) {
          EngineConfig o;
          o.num_devices = 4;
          o.chunks_per_partition = chunks;
          o.device_capacity_bytes = 1ll << 40;
          o.dedup = level;
          o.reorganize = level != DedupLevel::kNone;
          auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, o);
          if (!e.ok()) continue;
          auto r = e.ValueOrDie()->RunEpoch();
          if (!r.ok()) {
            benchutil::PrintRow({GnnKindName(kind), ds.name,
                                 std::to_string(layers),
                                 DedupLevelName(level),
                                 benchutil::TimeOrOom(r), "", "", "", "", "",
                                 ""},
                                w);
            continue;
          }
          const TimeBreakdown& t = r.ValueOrDie().time;
          const double total = r.ValueOrDie().SimSeconds();
          if (level == DedupLevel::kNone) baseline_total = total;
          benchutil::PrintRow(
              {GnnKindName(kind), ds.name, std::to_string(layers),
               DedupLevelName(level), FormatSeconds(t.gpu),
               FormatSeconds(t.h2d), FormatSeconds(t.d2d),
               FormatSeconds(t.cpu), FormatSeconds(t.overlapped),
               FormatSeconds(total),
               baseline_total > 0
                   ? FormatDouble(baseline_total / total, 2) + "x"
                   : "-"},
              w);
          // A timing row from a degraded epoch (retries, replays, fallbacks)
          // is not comparable to a clean one — flag it rather than letting
          // it silently skew the figure.
          const fault::RecoveryCounters& rc = r.ValueOrDie().recovery;
          if (rc.total() > 0) {
            std::printf("    ^ degraded epoch: %s\n", rc.ToString().c_str());
          }
        }
      }
      benchutil::PrintRule(w);
    }
  }
  return 0;
}
