// Structural report over the five synthetic datasets — the reproduction's
// analogue of Table 4 plus the structural-character validation DESIGN.md §2
// relies on: the social graph must be degree-skewed and non-local, the web
// and citation graphs id-local, the SBM graphs community-mixed.

#include <cstdio>

#include "bench_util.h"
#include "hongtu/graph/stats.h"

using namespace hongtu;

int main() {
  benchutil::PrintTitle(
      "Dataset report (Table 4 analogue + structural character)",
      "gini: in-degree skew (RMAT >> web). local%: edges within 1%-of-|V| id "
      "distance\n(web/citation high, social low). Paper-scale columns from "
      "Table 4.");
  const std::vector<int> w = {13, 8, 8, 5, 4, 6, 7, 9, 13};
  benchutil::PrintRow({"Dataset", "|V|", "|E|", "#F", "#L", "gini", "local%",
                       "med-dist", "paper |V|/|E|"},
                      w);
  benchutil::PrintRule(w);
  for (const auto& name : AllDatasetNames()) {
    Dataset ds = benchutil::MustLoad(name);
    const GraphStats st = ComputeGraphStats(ds.graph);
    benchutil::PrintRow(
        {ds.name, FormatCount(static_cast<double>(st.num_vertices)),
         FormatCount(static_cast<double>(st.num_edges)),
         std::to_string(ds.feature_dim()), std::to_string(ds.num_classes),
         FormatDouble(st.degree_gini, 2),
         FormatDouble(100.0 * st.local_edge_fraction, 1),
         FormatCount(static_cast<double>(st.median_edge_distance)),
         FormatCount(static_cast<double>(ds.paper_num_vertices)) + "/" +
             FormatCount(static_cast<double>(ds.paper_num_edges))},
        w);
  }
  return 0;
}
