/// \file bench_util.h
/// \brief Shared helpers for the per-table/figure reproduction harnesses.
///
/// Every binary in bench/ regenerates one table or figure of the paper on
/// the scaled datasets (DESIGN.md §2). Device/node memory capacities are
/// scaled *with the training-state ratio* so that OOM patterns are decided
/// by the same arithmetic as at paper scale:
///   cap_scaled = cap_paper * (|V|_ours * sum(dims_ours))
///                          / (|V|_paper * sum(dims_paper)).
///
/// Environment knobs:
///   HONGTU_SCALE  — dataset scale in (0,1], default 0.4
///   HONGTU_EPOCHS — measured epochs per configuration, default 1

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hongtu/common/format.h"
#include "hongtu/engine/engine.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/sim/memory_model.h"

namespace hongtu {
namespace benchutil {

inline double Scale() {
  const char* s = std::getenv("HONGTU_SCALE");
  if (s != nullptr) {
    const double v = std::atof(s);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return 0.4;
}

inline int Epochs() {
  const char* s = std::getenv("HONGTU_EPOCHS");
  if (s != nullptr) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 1;
}

inline Dataset MustLoad(const std::string& name, double scale = -1) {
  auto r = LoadDatasetScaled(name, scale > 0 ? scale : Scale());
  if (!r.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", name.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r.MoveValueUnsafe();
}

/// Layer dims for an L-layer model.
inline std::vector<int64_t> LayerDims(int64_t feature, int64_t hidden,
                                      int64_t classes, int layers) {
  std::vector<int64_t> dims = {feature};
  for (int l = 0; l < layers - 1; ++l) dims.push_back(hidden);
  dims.push_back(classes);
  return dims;
}

/// Scales a paper-hardware capacity to reproduction scale for this dataset
/// and model, using the ratio of total training-state bytes (topology +
/// vertex + intermediate data from the analytic memory model) between the
/// reproduction-scale and paper-scale configurations. This preserves the
/// paper's OOM margins for both vertex-dominated (GCN) and edge-dominated
/// (GAT) models.
inline int64_t ScaledCapacity(const Dataset& ds, double paper_bytes,
                              int layers, ModelKind kind) {
  const int paper_hidden = ds.paper_num_vertices > 10000000 ? 128 : 256;
  MemoryModelInput ours;
  ours.num_vertices = ds.graph.num_vertices();
  ours.num_edges = ds.graph.num_edges();
  ours.dims = LayerDims(ds.feature_dim(), ds.default_hidden_dim,
                        ds.num_classes, layers);
  ours.kind = kind;
  MemoryModelInput paper;
  paper.num_vertices = ds.paper_num_vertices;
  paper.num_edges = ds.paper_num_edges;
  paper.dims = LayerDims(ds.paper_feature_dim, paper_hidden,
                         ds.paper_num_classes, layers);
  paper.kind = kind;
  const double ratio =
      static_cast<double>(EvaluateMemoryModel(ours).total()) /
      static_cast<double>(EvaluateMemoryModel(paper).total());
  return static_cast<int64_t>(paper_bytes * ratio);
}

/// 80 GB A100, scaled.
inline int64_t ScaledDeviceCapacity(const Dataset& ds, int layers,
                                    ModelKind kind = ModelKind::kGcn) {
  return ScaledCapacity(ds, 80.0 * (1ll << 30), layers, kind);
}

/// 512 GB CPU node, scaled.
inline int64_t ScaledNodeCapacity(const Dataset& ds, int layers,
                                  ModelKind kind = ModelKind::kGcn) {
  return ScaledCapacity(ds, 512.0 * (1ll << 30), layers, kind);
}

// ---- Table printing --------------------------------------------------------

inline void PrintTitle(const std::string& title, const std::string& note) {
  // Every bench report opens with the runtime-config snapshot it ran under
  // (HONGTU_* knob state), once per process.
  static const bool config_printed = [] {
    std::printf("%s", RuntimeConfig::FromEnv().Describe().c_str());
    return true;
  }();
  (void)config_printed;
  std::printf("\n==== %s ====\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
}

inline void PrintRule(const std::vector<int>& widths) {
  for (int w : widths) {
    for (int i = 0; i < w + 2; ++i) std::printf("-");
  }
  std::printf("\n");
}

inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s  ", widths[i], cells[i].c_str());
  }
  std::printf("\n");
}

/// Simulated epoch time or "OOM" for engine results.
template <typename ResultT>
std::string TimeOrOom(const ResultT& r) {
  if (!r.ok()) {
    return r.status().IsOutOfMemory() ? "OOM" : r.status().ToString();
  }
  return FormatSeconds(r.ValueOrDie().SimSeconds());
}

}  // namespace benchutil
}  // namespace hongtu
