// google-benchmark microbenchmarks for the kernels HongTu's epochs are made
// of: sparse gather/scatter (the cuSparse stand-ins), GEMM, GAT attention,
// the dedup planner, and the communication executor's forward load.
//
// Backend A/B: the *WithBackend benchmarks take the kernel backend as their
// last argument (0 = reference scalar loops, 1 = blocked SIMD). Running with
// --kernels-report[=path] skips google-benchmark and instead emits a JSON
// old-vs-new throughput comparison (default BENCH_kernels.json): blocked vs
// reference GEMM at 512x256x256 plus GatherWeighted / ScatterWeighted on a
// power-law-skewed RMAT graph at dims {16, 64, 128, 256}, each measured at
// two thread tiers — 1 and kMtThreads. The multi-thread tier is PINNED (not
// "all cores") so the regression gate's (kernel, threads) keys are identical
// on every machine; 4 matches the CI runner class, where the pinned tier IS
// all cores.
//
// Gather/scatter rows additionally record the *banded* column: the same
// primitive dispatched through a precompiled EdgeSchedule (the
// propagation-blocked path engines run), with banded_speedup = vs reference
// and banded_vs_blocked = vs the single-pass blocked kernel. Rows where the
// dispatch heuristic declines banding (e.g. non-accumulating d16 gathers)
// measure the same single-pass code in both columns, so banded_vs_blocked
// hovers at 1.0 there by construction.

#include <benchmark/benchmark.h>
#include <sys/mman.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "hongtu/comm/dedup_plan.h"
#include "hongtu/comm/executor.h"
#include "hongtu/common/parallel.h"
#include "hongtu/gnn/gat_layer.h"
#include "hongtu/gnn/gcn_layer.h"
#include "hongtu/graph/builder.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/graph/generators.h"
#include "hongtu/kernels/backend.h"
#include "hongtu/kernels/codec.h"
#include "hongtu/kernels/gemm.h"
#include "hongtu/kernels/schedule.h"
#include "hongtu/tensor/ops.h"

namespace hongtu {
namespace {

kernels::Backend BackendArg(int64_t v) {
  return v == 0 ? kernels::Backend::kReference : kernels::Backend::kBlocked;
}

const Dataset& Web() {
  static const Dataset ds = [] {
    auto r = LoadDatasetScaled("it-2004", 0.2);
    HT_CHECK_OK(r.status());
    return r.MoveValueUnsafe();
  }();
  return ds;
}

const Chunk& WebFullChunk() {
  static const Chunk c = [] {
    std::vector<VertexId> all(Web().graph.num_vertices());
    std::iota(all.begin(), all.end(), 0);
    return ExtractChunk(Web().graph, std::move(all), 0, 0);
  }();
  return c;
}

void BM_GatherWeighted(benchmark::State& state) {
  const LocalGraph lg = LocalGraph::FromChunk(WebFullChunk());
  const int dim = static_cast<int>(state.range(0));
  const kernels::Backend saved = kernels::ActiveBackend();
  kernels::SetBackend(BackendArg(state.range(1)));
  Tensor src = Tensor::Gaussian(lg.num_src, dim, 1.0f, 1);
  Tensor dst(lg.num_dst, dim);
  for (auto _ : state) {
    GatherWeighted(lg, src, &dst);
    benchmark::DoNotOptimize(dst.data());
  }
  kernels::SetBackend(saved);
  state.SetItemsProcessed(state.iterations() * lg.num_edges);
}
BENCHMARK(BM_GatherWeighted)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_ScatterWeighted(benchmark::State& state) {
  const LocalGraph lg = LocalGraph::FromChunk(WebFullChunk());
  const int dim = static_cast<int>(state.range(0));
  const kernels::Backend saved = kernels::ActiveBackend();
  kernels::SetBackend(BackendArg(state.range(1)));
  Tensor d_dst = Tensor::Gaussian(lg.num_dst, dim, 1.0f, 2);
  Tensor d_src(lg.num_src, dim);
  for (auto _ : state) {
    d_src.Zero();
    ScatterWeightedAccum(lg, d_dst, &d_src);
    benchmark::DoNotOptimize(d_src.data());
  }
  kernels::SetBackend(saved);
  state.SetItemsProcessed(state.iterations() * lg.num_edges);
}
BENCHMARK(BM_ScatterWeighted)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  const kernels::Backend saved = kernels::ActiveBackend();
  kernels::SetBackend(BackendArg(state.range(1)));
  Tensor a = Tensor::Gaussian(n, 64, 1.0f, 3);
  Tensor b = Tensor::Gaussian(64, 32, 1.0f, 4);
  Tensor c(n, 32);
  for (auto _ : state) {
    ops::Matmul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  kernels::SetBackend(saved);
  state.SetItemsProcessed(state.iterations() * n * 64 * 32 * 2);
}
BENCHMARK(BM_Gemm)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({16384, 0})
    ->Args({16384, 1});

void BM_GcnLayerForward(benchmark::State& state) {
  const LocalGraph lg = LocalGraph::FromChunk(WebFullChunk());
  GcnLayer layer(64, 32, true, 5);
  Tensor src = Tensor::Gaussian(lg.num_src, 64, 1.0f, 6);
  Tensor dst;
  for (auto _ : state) {
    HT_CHECK_OK(layer.Forward(lg, src, &dst, nullptr));
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_GcnLayerForward);

void BM_GatLayerForward(benchmark::State& state) {
  const LocalGraph lg = LocalGraph::FromChunk(WebFullChunk());
  GatLayer layer(64, 32, true, 7);
  Tensor src = Tensor::Gaussian(lg.num_src, 64, 1.0f, 8);
  Tensor dst;
  for (auto _ : state) {
    HT_CHECK_OK(layer.Forward(lg, src, &dst, nullptr));
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_GatLayerForward);

void BM_BuildDedupPlan(benchmark::State& state) {
  static const TwoLevelPartition tl = [] {
    auto r = BuildTwoLevelPartition(Web().graph, 4, 8);
    HT_CHECK_OK(r.status());
    return r.MoveValueUnsafe();
  }();
  for (auto _ : state) {
    auto plan = BuildDedupPlan(tl, DedupLevel::kP2PReuse);
    HT_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan.ValueOrDie().volumes.v_ru);
  }
}
BENCHMARK(BM_BuildDedupPlan);

void BM_DedupForwardLoad(benchmark::State& state) {
  static const TwoLevelPartition tl = [] {
    auto r = BuildTwoLevelPartition(Web().graph, 4, 8);
    HT_CHECK_OK(r.status());
    return r.MoveValueUnsafe();
  }();
  static const DedupPlan plan = [] {
    auto r = BuildDedupPlan(tl, DedupLevel::kP2PReuse);
    HT_CHECK_OK(r.status());
    return r.MoveValueUnsafe();
  }();
  const int dim = static_cast<int>(state.range(0));
  Tensor host = Tensor::Gaussian(Web().graph.num_vertices(), dim, 1.0f, 9);
  CommExecutor exec(&tl, &plan, nullptr);
  HT_CHECK_OK(exec.BeginLayer(dim));
  std::vector<Tensor> nbr;
  for (auto _ : state) {
    for (int j = 0; j < 8; ++j) {
      HT_CHECK_OK(exec.ForwardLoad(j, host, &nbr));
    }
    benchmark::DoNotOptimize(nbr.data());
  }
  state.SetBytesProcessed(state.iterations() * plan.volumes.v_ori * dim * 4);
}
BENCHMARK(BM_DedupForwardLoad)->Arg(16)->Arg(64);

// ---- --kernels-report: old-vs-new throughput for the perf trajectory. ------

/// Asks the kernel to back a tensor with huge pages. The SpMM A/B compare
/// is random-access latency bound, so whether the feature block happens to
/// land on huge pages dominates run-to-run variance; advising it explicitly
/// puts both backends on identical, stable page mappings.
void HugeAdvise(const Tensor& t) {
  const auto addr = reinterpret_cast<uintptr_t>(t.data());
  const uintptr_t lo = (addr + 4095) & ~static_cast<uintptr_t>(4095);
  const uintptr_t hi = (addr + t.bytes()) & ~static_cast<uintptr_t>(4095);
  if (hi > lo) {
    madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
  }
}

/// Best-of-reps seconds per call of `fn`; each rep times `calls`
/// back-to-back invocations. Min (not median) is used because shared-host
/// scheduler steal only ever adds time; the fastest rep is the closest
/// estimate of the kernel's true cost, and both backends are measured the
/// same way.
double TimeSecs(const std::function<void()>& fn, int calls = 4) {
  fn();  // warmup
  double best = 1e30;
  for (int rep = 0; rep < 9; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < calls; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    best =
        std::min(best, std::chrono::duration<double>(t1 - t0).count() / calls);
  }
  return best;
}

/// TimeSecs over several candidates at once, with the reps *interleaved*:
/// every rep times each candidate back to back, so slow drift of the shared
/// host lands on all columns of one row equally instead of on whichever
/// backend happened to run last. The report's speedup ratios are only
/// meaningful under this pairing.
std::vector<double> TimeInterleaved(
    const std::vector<std::function<void()>>& fns, int calls = 4) {
  for (const auto& fn : fns) fn();  // warmup
  std::vector<double> best(fns.size(), 1e30);
  // More reps than TimeSecs: each column's min must converge to its
  // unloaded speed on a shared host, or the ratio inherits window luck.
  for (int rep = 0; rep < 15; ++rep) {
    for (size_t i = 0; i < fns.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int c = 0; c < calls; ++c) fns[i]();
      const auto t1 = std::chrono::steady_clock::now();
      best[i] = std::min(
          best[i], std::chrono::duration<double>(t1 - t0).count() / calls);
    }
  }
  return best;
}

struct AbResult {
  std::string kernel;
  int threads;
  double work_per_call;  // flops (GEMM) or edges (SpMM)
  double ref_secs;
  double blocked_secs;
  double banded_secs = 0;  // 0 = kernel has no banded path (GEMM)
};

/// The pinned multi-thread tier of the kernels report. NOT NumThreads():
/// the regression gate keys rows on (kernel, threads), so the tier must be
/// identical on the recording machine and every CI runner. 4 = the CI
/// runner class's core count (there the pinned tier is the all-cores pass);
/// larger hosts simply run the tier restricted to 4 threads, smaller ones
/// oversubscribe — the speedup column divides the machine out either way.
constexpr int kMtThreads = 4;

int RunKernelsReport(const std::string& path) {
  std::vector<AbResult> results;
  const int saved_threads = NumThreads();

  // Shared fixtures: the power-law-skewed RMAT graph, full-chunk and
  // HongTu-style chunked views.
  RmatOptions opts;
  opts.seed = 13;
  auto edges = GenerateRmat(1 << 17, 48 * (1 << 15), opts);
  HT_CHECK_OK(edges.status());
  GraphBuilder builder;
  auto graph = builder.Build(1 << 17, edges.MoveValueUnsafe());
  HT_CHECK_OK(graph.status());
  const Graph& gr = graph.ValueOrDie();
  std::vector<VertexId> all(gr.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  const Chunk chunk = ExtractChunk(gr, std::move(all), 0, 0);
  const LocalGraph lg = LocalGraph::FromChunk(chunk);
  const int kChunks = 16;
  std::vector<Chunk> chunks;
  std::vector<LocalGraph> lgs;
  const int64_t nv = gr.num_vertices();
  int64_t total_edges = 0;
  for (int i = 0; i < kChunks; ++i) {
    const int64_t lo = nv * i / kChunks, hi = nv * (i + 1) / kChunks;
    std::vector<VertexId> dsts(hi - lo);
    std::iota(dsts.begin(), dsts.end(), static_cast<VertexId>(lo));
    chunks.push_back(ExtractChunk(gr, std::move(dsts), 0, i));
    total_edges += chunks.back().num_edges();
  }
  for (const Chunk& c : chunks) lgs.push_back(LocalGraph::FromChunk(c));

  for (const int threads : {1, kMtThreads}) {
    SetNumThreads(threads);

    // Blocked vs reference GEMM at 512x256x256.
    {
      const int64_t m = 512, k = 256, n = 256;
      const Tensor a = Tensor::Gaussian(m, k, 1.0f, 11);
      const Tensor b = Tensor::Gaussian(k, n, 1.0f, 12);
      Tensor c(m, n);
      AbResult r;
      r.kernel = "gemm_512x256x256";
      r.threads = threads;
      r.work_per_call = 2.0 * m * k * n;
      r.ref_secs = TimeSecs(
          [&] {
            kernels::Gemm(kernels::Backend::kReference, a.data(), b.data(),
                          c.data(), m, k, n);
          },
          /*calls=*/8);
      r.blocked_secs = TimeSecs(
          [&] {
            kernels::Gemm(kernels::Backend::kBlocked, a.data(), b.data(),
                          c.data(), m, k, n);
          },
          /*calls=*/24);
      results.push_back(r);
    }

    // Gather/scatter on the full RMAT chunk, single-pass AND banded. The
    // schedule is compiled per dim tier (the engine sizes bands for its
    // model's widest layer; a uniform-width model is the common case), and
    // reused across reps — its build cost is one-time by design.
    for (const int dim : {16, 64, 128, 256}) {
      const int calls = dim >= 128 ? 2 : 4;  // wide rows are slow; cap reps
      kernels::EdgeScheduleParams sp;
      sp.max_dim = dim;
      const ChunkSchedules scheds = ChunkSchedules::Build(chunk, sp);
      const LocalGraph blg = LocalGraph::FromChunk(chunk, &scheds);
      const Tensor src = Tensor::Gaussian(lg.num_src, dim, 1.0f, 14);
      const Tensor d_dst = Tensor::Gaussian(lg.num_dst, dim, 1.0f, 15);
      Tensor dst(lg.num_dst, dim);
      HugeAdvise(src);
      HugeAdvise(d_dst);
      AbResult r;
      r.kernel = "gather_weighted_rmat_d" + std::to_string(dim);
      r.threads = threads;
      r.work_per_call = static_cast<double>(lg.num_edges);
      {
        const std::vector<double> t = TimeInterleaved(
            {[&] {
               kernels::SetBackend(kernels::Backend::kReference);
               GatherWeighted(lg, src, &dst);
             },
             [&] {
               kernels::SetBackend(kernels::Backend::kBlocked);
               GatherWeighted(lg, src, &dst);
             },
             [&] {
               kernels::SetBackend(kernels::Backend::kBlocked);
               GatherWeighted(blg, src, &dst);
             }},
            calls);
        r.ref_secs = t[0];
        r.blocked_secs = t[1];
        r.banded_secs = t[2];
      }
      results.push_back(r);

      Tensor d_src(lg.num_src, dim);
      AbResult s;
      s.kernel = "scatter_weighted_rmat_d" + std::to_string(dim);
      s.threads = threads;
      s.work_per_call = static_cast<double>(lg.num_edges);
      {
        const std::vector<double> t = TimeInterleaved(
            {[&] {
               kernels::SetBackend(kernels::Backend::kReference);
               ScatterWeightedAccum(lg, d_dst, &d_src);
             },
             [&] {
               kernels::SetBackend(kernels::Backend::kBlocked);
               ScatterWeightedAccum(lg, d_dst, &d_src);
             },
             [&] {
               kernels::SetBackend(kernels::Backend::kBlocked);
               ScatterWeightedAccum(blg, d_dst, &d_src);
             }},
            calls);
        s.ref_secs = t[0];
        s.blocked_secs = t[1];
        s.banded_secs = t[2];
      }
      results.push_back(s);
    }

    // Chunked execution — HongTu's actual schedule: each chunk gathers from
    // its own compact neighbor block (what the comm layer just loaded), so
    // the working set is cache-resident rather than a full-graph table.
    for (const int dim : {16, 64}) {
      kernels::EdgeScheduleParams sp;
      sp.max_dim = dim;
      std::vector<ChunkSchedules> cscheds;
      std::vector<LocalGraph> blgs;
      for (const Chunk& c : chunks) {
        cscheds.push_back(ChunkSchedules::Build(c, sp));
      }
      for (int i = 0; i < kChunks; ++i) {
        blgs.push_back(LocalGraph::FromChunk(chunks[i], &cscheds[i]));
      }
      std::vector<Tensor> srcs;
      std::vector<Tensor> dsts;
      for (const LocalGraph& clg : lgs) {
        srcs.push_back(Tensor::Gaussian(clg.num_src, dim, 1.0f, 16));
        dsts.emplace_back(clg.num_dst, dim);
      }
      const auto run = [&] {
        for (int i = 0; i < kChunks; ++i) {
          GatherWeighted(lgs[i], srcs[i], &dsts[i]);
        }
      };
      const auto run_banded = [&] {
        for (int i = 0; i < kChunks; ++i) {
          GatherWeighted(blgs[i], srcs[i], &dsts[i]);
        }
      };
      AbResult r;
      r.kernel = "gather_weighted_rmat_chunked_d" + std::to_string(dim);
      r.threads = threads;
      r.work_per_call = static_cast<double>(total_edges);
      {
        const std::vector<double> t = TimeInterleaved(
            {[&] {
               kernels::SetBackend(kernels::Backend::kReference);
               run();
             },
             [&] {
               kernels::SetBackend(kernels::Backend::kBlocked);
               run();
             },
             [&] {
               kernels::SetBackend(kernels::Backend::kBlocked);
               run_banded();
             }});
        r.ref_secs = t[0];
        r.blocked_secs = t[1];
        r.banded_secs = t[2];
      }
      results.push_back(r);
    }

    // Communication-codec kernels (kernels/codec.h): encode / decode /
    // decode-accumulate per precision, parallelized over row blocks exactly
    // the way the executor's fetch loops drive them (the kernels themselves
    // are serial per call). work_per_call is the fp32-side payload in
    // bytes, so the throughput columns read as B/s; the gated `speedup`
    // column is the `omp simd` path over the scalar reference, measured
    // interleaved in-process like every other row. The payload is sized to
    // stay cache-resident: a DRAM-bound sweep would measure bandwidth, not
    // the codec, and its ratio would be noise.
    {
      const int64_t rows = 1 << 12, dim = 64;  // 1 MiB fp32 payload
      const int64_t total = rows * dim;
      const Tensor src = Tensor::Gaussian(rows, dim, 1.0f, 21);
      std::vector<uint16_t> enc(static_cast<size_t>(total));
      Tensor dec(rows, dim);
      for (const auto prec :
           {kernels::CommPrecision::kBf16, kernels::CommPrecision::kFp16}) {
        const std::string suffix =
            std::string("_") + kernels::CommPrecisionName(prec);
        kernels::EncodeRows(kernels::Backend::kBlocked, prec, src.data(),
                            total, enc.data());  // decoders read real payload
        const auto encode = [&](kernels::Backend b) {
          ParallelForChunked(0, rows, [&](int64_t lo, int64_t hi) {
            kernels::EncodeRows(b, prec, src.row(lo), (hi - lo) * dim,
                                enc.data() + lo * dim);
          });
        };
        const auto decode = [&](kernels::Backend b) {
          ParallelForChunked(0, rows, [&](int64_t lo, int64_t hi) {
            kernels::DecodeRows(b, prec, enc.data() + lo * dim,
                                (hi - lo) * dim, dec.row(lo));
          });
        };
        const auto decode_accum = [&](kernels::Backend b) {
          ParallelForChunked(0, rows, [&](int64_t lo, int64_t hi) {
            kernels::DecodeAccumRows(b, prec, enc.data() + lo * dim,
                                     (hi - lo) * dim, dec.row(lo));
          });
        };
        const std::pair<const char*,
                        std::function<void(kernels::Backend)>> kernels_ab[] = {
            {"codec_encode", encode},
            {"codec_decode", decode},
            {"codec_decode_accum", decode_accum}};
        for (const auto& [name, fn] : kernels_ab) {
          AbResult r;
          r.kernel = std::string(name) + suffix;
          r.threads = threads;
          r.work_per_call = static_cast<double>(total) * 4;
          const std::vector<double> t = TimeInterleaved(
              {[&] { fn(kernels::Backend::kReference); },
               [&] { fn(kernels::Backend::kBlocked); }},
              /*calls=*/24);
          r.ref_secs = t[0];
          r.blocked_secs = t[1];
          results.push_back(r);
        }
      }
    }
  }
  SetNumThreads(saved_threads);

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernels\",\n  \"threads\": %d,\n"
               "  \"results\": [\n", NumThreads());
  for (size_t i = 0; i < results.size(); ++i) {
    const AbResult& r = results[i];
    const double speedup = r.ref_secs / r.blocked_secs;
    const char* tail = i + 1 < results.size() ? "," : "";
    if (r.banded_secs > 0) {
      std::fprintf(
          f,
          "    {\"kernel\": \"%s\", \"threads\": %d, "
          "\"ref_throughput\": %.4g, \"blocked_throughput\": %.4g, "
          "\"speedup\": %.3f, \"banded_throughput\": %.4g, "
          "\"banded_speedup\": %.3f, \"banded_vs_blocked\": %.3f}%s\n",
          r.kernel.c_str(), r.threads, r.work_per_call / r.ref_secs,
          r.work_per_call / r.blocked_secs, speedup,
          r.work_per_call / r.banded_secs, r.ref_secs / r.banded_secs,
          r.blocked_secs / r.banded_secs, tail);
      std::printf(
          "%-32s threads=%d  ref=%.4g/s  blocked=%.4g/s (%.2fx)  "
          "banded=%.4g/s (%.2fx ref, %.2fx blocked)\n",
          r.kernel.c_str(), r.threads, r.work_per_call / r.ref_secs,
          r.work_per_call / r.blocked_secs, speedup,
          r.work_per_call / r.banded_secs, r.ref_secs / r.banded_secs,
          r.blocked_secs / r.banded_secs);
    } else {
      std::fprintf(f,
                   "    {\"kernel\": \"%s\", \"threads\": %d, "
                   "\"ref_throughput\": %.4g, \"blocked_throughput\": %.4g, "
                   "\"speedup\": %.3f}%s\n",
                   r.kernel.c_str(), r.threads, r.work_per_call / r.ref_secs,
                   r.work_per_call / r.blocked_secs, speedup, tail);
      std::printf(
          "%-32s threads=%d  ref=%.4g/s  blocked=%.4g/s  speedup=%.2fx\n",
          r.kernel.c_str(), r.threads, r.work_per_call / r.ref_secs,
          r.work_per_call / r.blocked_secs, speedup);
    }
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace hongtu

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--kernels-report", 16) == 0) {
      std::string path = "BENCH_kernels.json";
      if (argv[i][16] == '=') path = argv[i] + 17;
      return hongtu::RunKernelsReport(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
