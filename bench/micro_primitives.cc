// google-benchmark microbenchmarks for the kernels HongTu's epochs are made
// of: sparse gather/scatter (the cuSparse stand-ins), GEMM, GAT attention,
// the dedup planner, and the communication executor's forward load.

#include <benchmark/benchmark.h>

#include <numeric>

#include "hongtu/comm/dedup_plan.h"
#include "hongtu/comm/executor.h"
#include "hongtu/gnn/gat_layer.h"
#include "hongtu/gnn/gcn_layer.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/tensor/ops.h"

namespace hongtu {
namespace {

const Dataset& Web() {
  static const Dataset ds = [] {
    auto r = LoadDatasetScaled("it-2004", 0.2);
    HT_CHECK_OK(r.status());
    return r.MoveValueUnsafe();
  }();
  return ds;
}

const Chunk& WebFullChunk() {
  static const Chunk c = [] {
    std::vector<VertexId> all(Web().graph.num_vertices());
    std::iota(all.begin(), all.end(), 0);
    return ExtractChunk(Web().graph, std::move(all), 0, 0);
  }();
  return c;
}

void BM_GatherWeighted(benchmark::State& state) {
  const LocalGraph lg = LocalGraph::FromChunk(WebFullChunk());
  const int dim = static_cast<int>(state.range(0));
  Tensor src = Tensor::Gaussian(lg.num_src, dim, 1.0f, 1);
  Tensor dst(lg.num_dst, dim);
  for (auto _ : state) {
    GatherWeighted(lg, src, &dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * lg.num_edges);
}
BENCHMARK(BM_GatherWeighted)->Arg(16)->Arg(64);

void BM_ScatterWeighted(benchmark::State& state) {
  const LocalGraph lg = LocalGraph::FromChunk(WebFullChunk());
  const int dim = static_cast<int>(state.range(0));
  Tensor d_dst = Tensor::Gaussian(lg.num_dst, dim, 1.0f, 2);
  Tensor d_src(lg.num_src, dim);
  for (auto _ : state) {
    d_src.Zero();
    ScatterWeightedAccum(lg, d_dst, &d_src);
    benchmark::DoNotOptimize(d_src.data());
  }
  state.SetItemsProcessed(state.iterations() * lg.num_edges);
}
BENCHMARK(BM_ScatterWeighted)->Arg(16)->Arg(64);

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = Tensor::Gaussian(n, 64, 1.0f, 3);
  Tensor b = Tensor::Gaussian(64, 32, 1.0f, 4);
  Tensor c(n, 32);
  for (auto _ : state) {
    ops::Matmul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 32 * 2);
}
BENCHMARK(BM_Gemm)->Arg(1024)->Arg(16384);

void BM_GcnLayerForward(benchmark::State& state) {
  const LocalGraph lg = LocalGraph::FromChunk(WebFullChunk());
  GcnLayer layer(64, 32, true, 5);
  Tensor src = Tensor::Gaussian(lg.num_src, 64, 1.0f, 6);
  Tensor dst;
  for (auto _ : state) {
    HT_CHECK_OK(layer.Forward(lg, src, &dst, nullptr));
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_GcnLayerForward);

void BM_GatLayerForward(benchmark::State& state) {
  const LocalGraph lg = LocalGraph::FromChunk(WebFullChunk());
  GatLayer layer(64, 32, true, 7);
  Tensor src = Tensor::Gaussian(lg.num_src, 64, 1.0f, 8);
  Tensor dst;
  for (auto _ : state) {
    HT_CHECK_OK(layer.Forward(lg, src, &dst, nullptr));
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_GatLayerForward);

void BM_BuildDedupPlan(benchmark::State& state) {
  static const TwoLevelPartition tl = [] {
    auto r = BuildTwoLevelPartition(Web().graph, 4, 8);
    HT_CHECK_OK(r.status());
    return r.MoveValueUnsafe();
  }();
  for (auto _ : state) {
    auto plan = BuildDedupPlan(tl, DedupLevel::kP2PReuse);
    HT_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan.ValueOrDie().volumes.v_ru);
  }
}
BENCHMARK(BM_BuildDedupPlan);

void BM_DedupForwardLoad(benchmark::State& state) {
  static const TwoLevelPartition tl = [] {
    auto r = BuildTwoLevelPartition(Web().graph, 4, 8);
    HT_CHECK_OK(r.status());
    return r.MoveValueUnsafe();
  }();
  static const DedupPlan plan = [] {
    auto r = BuildDedupPlan(tl, DedupLevel::kP2PReuse);
    HT_CHECK_OK(r.status());
    return r.MoveValueUnsafe();
  }();
  const int dim = static_cast<int>(state.range(0));
  Tensor host = Tensor::Gaussian(Web().graph.num_vertices(), dim, 1.0f, 9);
  CommExecutor exec(&tl, &plan, nullptr);
  HT_CHECK_OK(exec.BeginLayer(dim));
  std::vector<Tensor> nbr;
  for (auto _ : state) {
    for (int j = 0; j < 8; ++j) {
      HT_CHECK_OK(exec.ForwardLoad(j, host, &nbr));
    }
    benchmark::DoNotOptimize(nbr.data());
  }
  state.SetBytesProcessed(state.iterations() * plan.volumes.v_ori * dim * 4);
}
BENCHMARK(BM_DedupForwardLoad)->Arg(16)->Arg(64);

}  // namespace
}  // namespace hongtu

BENCHMARK_MAIN();
