// Reproduces Table 6: comparison with multi-GPU systems on 4 devices across
// all five graphs. Roles: Sancus/HongTu-IM -> InMemoryEngine(4 devices),
// HongTu -> HongTuEngine, DistDGL -> MiniBatchEngine (fanout 10, batch 1024).
// Claims under test: the in-memory engines OOM on the three large graphs
// while HongTu completes; DistDGL's runtime grows explosively with layers
// and OOMs for deep models.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace hongtu;

namespace {

std::string RunInMemory(const Dataset& ds, const ModelConfig& cfg,
                        int layers) {
  EngineConfig o;
  o.num_devices = 4;
  o.device_capacity_bytes = benchutil::ScaledDeviceCapacity(ds, layers);
  auto e = Engine::Create(EngineKind::kInMemory, &ds, cfg, o);
  if (!e.ok()) return "ERR";
  return benchutil::TimeOrOom(e.ValueOrDie()->RunEpoch());
}

std::string RunHongTu(const Dataset& ds, const ModelConfig& cfg, int layers) {
  EngineConfig o;
  o.num_devices = 4;
  const bool small = ds.graph.num_vertices() < 20000 * benchutil::Scale();
  o.chunks_per_partition = small ? 1 : ds.default_chunks_gcn;
  o.device_capacity_bytes = benchutil::ScaledDeviceCapacity(ds, layers);
  // HongTu tunes the chunk count to the device memory (§4.3, Fig. 10);
  // mirror that: on OOM retry with more chunks before giving up.
  for (int mult = 1; mult <= 4; mult *= 2) {
    EngineConfig attempt = o;
    attempt.chunks_per_partition = o.chunks_per_partition * mult;
    auto e = Engine::Create(EngineKind::kHongTu, &ds, cfg, attempt);
    if (!e.ok()) return "ERR";
    auto r = e.ValueOrDie()->RunEpoch();
    if (r.ok() || !r.status().IsOutOfMemory() || mult == 4) {
      return benchutil::TimeOrOom(r);
    }
  }
  return "OOM";
}

std::string RunMiniBatch(const Dataset& ds, const ModelConfig& cfg,
                         int layers) {
  EngineConfig o;
  o.num_devices = 4;
  o.device_capacity_bytes = benchutil::ScaledDeviceCapacity(ds, layers);
  o.fanout = 10;
  // The paper uses batch 1024 on graphs 300-700x larger; keep the number of
  // steps per epoch comparable by scaling the batch with the train set
  // (sampled blocks otherwise saturate to |V| at reproduction scale).
  const int64_t train = static_cast<int64_t>(
      ds.VerticesWithRole(SplitRole::kTrain).size());
  o.batch_size = static_cast<int>(std::clamp<int64_t>(train / 8, 64, 1024));
  auto e = Engine::Create(EngineKind::kMiniBatch, &ds, cfg, o);
  if (!e.ok()) return "ERR";
  return benchutil::TimeOrOom(e.ValueOrDie()->RunEpoch());
}

}  // namespace

int main() {
  benchutil::PrintTitle(
      "Table 6: vs multi-GPU systems (4 devices), GCN",
      "Simulated seconds/epoch. Sancus/HongTu-IM OOM on the three large "
      "graphs;\nDistDGL grows explosively with layers (neighbor explosion) "
      "and OOMs deep.");
  const std::vector<int> w = {7, 12, 13, 10, 10};
  benchutil::PrintRow(
      {"Layers", "Dataset", "Sancus/IM", "HongTu", "DistDGL"}, w);
  benchutil::PrintRule(w);

  // 2/4/8 layers on the small graphs; 2/3/4 on the large ones (paper §7.2).
  for (const char* name :
       {"reddit", "ogbn-products", "it-2004", "ogbn-paper", "friendster"}) {
    Dataset ds = benchutil::MustLoad(name);
    const bool small = ds.name == "reddit" || ds.name == "ogbn-products";
    for (int layers : (small ? std::vector<int>{2, 4, 8}
                             : std::vector<int>{2, 3, 4})) {
      ModelConfig cfg =
          ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(),
                            ds.default_hidden_dim, ds.num_classes, layers, 42);
      benchutil::PrintRow({std::to_string(layers), ds.name,
                           RunInMemory(ds, cfg, layers),
                           RunHongTu(ds, cfg, layers),
                           RunMiniBatch(ds, cfg, layers)},
                          w);
    }
  }
  return 0;
}
