// Pipelined chunk executor tests. Two layers of coverage: the StagePipeline
// runtime itself (ordering, depth bound, error poisoning — the TSan CI job
// runs exactly this binary), and the end-to-end pin that the pipelined
// epoch loop (pipeline_depth >= 2) matches the serial loop
// (pipeline_depth = 0) on loss/accuracy/parameters for every layer type,
// dedup level, and chunk count, including the single-chunk degenerate case.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <tuple>
#include <vector>

#include "hongtu/common/pipeline.h"
#include "hongtu/engine/hongtu_engine.h"

namespace hongtu {
namespace {

constexpr int64_t kBig = 1ll << 40;

// ---- StagePipeline runtime -------------------------------------------------

TEST(StagePipeline, StagesRetireInOrder) {
  std::mutex mu;
  std::vector<std::pair<int, int64_t>> events;  // (stage, item)
  std::vector<StagePipeline::StageFn> stages;
  for (int s = 0; s < 3; ++s) {
    stages.push_back([&, s](int64_t item) {
      std::lock_guard<std::mutex> lock(mu);
      events.emplace_back(s, item);
      return Status::OK();
    });
  }
  {
    StagePipeline pipe(std::move(stages), 2);
    for (int64_t j = 0; j < 7; ++j) ASSERT_TRUE(pipe.Submit(j).ok());
    ASSERT_TRUE(pipe.Flush().ok());
  }
  ASSERT_EQ(events.size(), 21u);
  // Per stage: items strictly FIFO. Per item: stage 0 before 1 before 2.
  std::vector<int64_t> next(3, 0);
  std::vector<int> reached(7, -1);
  for (const auto& [s, item] : events) {
    EXPECT_EQ(item, next[s]) << "stage " << s;
    ++next[s];
    EXPECT_EQ(reached[item], s - 1) << "item " << item;
    reached[item] = s;
  }
}

TEST(StagePipeline, DepthBoundsInFlight) {
  std::mutex mu;
  int64_t in_flight = 0;
  int64_t max_in_flight = 0;
  std::vector<StagePipeline::StageFn> stages;
  stages.push_back([&](int64_t) {
    std::lock_guard<std::mutex> lock(mu);
    max_in_flight = std::max(max_in_flight, ++in_flight);
    return Status::OK();
  });
  stages.push_back([](int64_t) { return Status::OK(); });
  stages.push_back([&](int64_t) {
    std::lock_guard<std::mutex> lock(mu);
    --in_flight;
    return Status::OK();
  });
  {
    StagePipeline pipe(std::move(stages), 3);
    for (int64_t j = 0; j < 32; ++j) ASSERT_TRUE(pipe.Submit(j).ok());
    ASSERT_TRUE(pipe.Flush().ok());
  }
  EXPECT_LE(max_in_flight, 3);
  EXPECT_EQ(in_flight, 0);
}

TEST(StagePipeline, ErrorPoisonsRemainingWork) {
  std::atomic<int> late_stage_runs{0};
  std::vector<StagePipeline::StageFn> stages;
  stages.push_back([](int64_t item) {
    return item == 2 ? Status::Internal("stage 0 failed on item 2")
                     : Status::OK();
  });
  stages.push_back([&](int64_t item) {
    if (item >= 2) ++late_stage_runs;
    return Status::OK();
  });
  StagePipeline pipe(std::move(stages), 2);
  Status last = Status::OK();
  for (int64_t j = 0; j < 6; ++j) last = pipe.Submit(j);
  const Status st = pipe.Flush();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("item 2"), std::string::npos);
  // Items after the failure are skipped, not executed.
  EXPECT_EQ(late_stage_runs.load(), 0);
}

TEST(StagePipeline, FirstErrorCarriesStageItemAndCause) {
  std::vector<StagePipeline::StageFn> stages;
  stages.push_back([](int64_t) { return Status::OK(); });
  stages.push_back([](int64_t item) {
    return item == 3 ? Status::Unavailable("flaky link") : Status::OK();
  });
  StagePipeline pipe(std::move(stages), 2);
  for (int64_t j = 0; j < 5; ++j) pipe.Submit(j);
  const Status st = pipe.Flush();
  ASSERT_FALSE(st.ok());
  // The wrapped sticky error names the failure point but keeps the stage's
  // own code — the engine's replay path dispatches on it.
  EXPECT_TRUE(st.IsTransient());
  EXPECT_NE(st.message().find("stage 1"), std::string::npos);
  EXPECT_NE(st.message().find("item 3"), std::string::npos);
  const StagePipeline::FailureInfo fail = pipe.FirstError();
  EXPECT_EQ(fail.stage, 1);
  EXPECT_EQ(fail.item, 3);
  EXPECT_TRUE(fail.status.IsTransient());
  // The unwrapped cause, not the decorated copy.
  EXPECT_EQ(fail.status.message(), "flaky link");
}

TEST(StagePipeline, FirstErrorIsEmptyWhileHealthy) {
  std::vector<StagePipeline::StageFn> stages;
  stages.push_back([](int64_t) { return Status::OK(); });
  StagePipeline pipe(std::move(stages), 2);
  StagePipeline::FailureInfo fail = pipe.FirstError();
  EXPECT_TRUE(fail.status.ok());
  EXPECT_EQ(fail.stage, -1);
  EXPECT_EQ(fail.item, -1);
  ASSERT_TRUE(pipe.Submit(0).ok());
  ASSERT_TRUE(pipe.Flush().ok());
  fail = pipe.FirstError();
  EXPECT_TRUE(fail.status.ok());
  EXPECT_EQ(fail.stage, -1);
}

TEST(StagePipeline, SingleItemSingleDepth) {
  int calls = 0;
  std::vector<StagePipeline::StageFn> stages;
  for (int s = 0; s < 3; ++s) {
    stages.push_back([&](int64_t) {
      ++calls;  // single item, depth 1: stages strictly sequential
      return Status::OK();
    });
  }
  StagePipeline pipe(std::move(stages), 1);
  ASSERT_TRUE(pipe.Submit(0).ok());
  ASSERT_TRUE(pipe.Flush().ok());
  EXPECT_EQ(calls, 3);
}

TEST(StagePipeline, FlushOnEmptyPipelineIsOk) {
  std::vector<StagePipeline::StageFn> stages;
  stages.push_back([](int64_t) { return Status::OK(); });
  StagePipeline pipe(std::move(stages), 4);
  EXPECT_TRUE(pipe.Flush().ok());
}

// ---- Overlap metering ------------------------------------------------------

TEST(SimPlatform, OverlapRegionChargesCriticalPath) {
  InterconnectParams p;
  p.t_hd = 100.0;
  p.gpu_flops = 10.0;
  p.gpu_mem_bw = 1e12;
  p.xfer_latency_s = 0.0;
  p.kernel_launch_s = 0.0;
  SimPlatform plat(1, 1 << 20, p);
  plat.BeginOverlap(2);
  SimPlatform::SetLane(0);
  plat.AddH2D(0, 100);  // 1 s on the comm lane
  plat.Synchronize();
  SimPlatform::SetLane(1);
  plat.AddGpuCompute(0, 20.0, 0.0);  // 2 s on the compute lane
  plat.Synchronize();
  plat.EndOverlap();
  SimPlatform::SetLane(0);
  // Busy components are preserved; the 1 s hidden behind the slower lane
  // moves into `overlapped`, so total() is the 2 s critical path.
  EXPECT_DOUBLE_EQ(plat.time().h2d, 1.0);
  EXPECT_DOUBLE_EQ(plat.time().gpu, 2.0);
  EXPECT_DOUBLE_EQ(plat.time().overlapped, 1.0);
  EXPECT_DOUBLE_EQ(plat.time().busy(), 3.0);
  EXPECT_DOUBLE_EQ(plat.time().total(), 2.0);
}

TEST(SimPlatform, SerialPhasesHaveNoOverlap) {
  SimPlatform plat(2, 1 << 20);
  plat.AddH2D(0, 1 << 20);
  plat.Synchronize();
  plat.AddGpuCompute(1, 1e9, 1e6);
  plat.Synchronize();
  EXPECT_DOUBLE_EQ(plat.time().overlapped, 0.0);
  EXPECT_DOUBLE_EQ(plat.time().total(), plat.time().busy());
}

// ---- Pipelined vs serial epoch equivalence ---------------------------------

Dataset SmallDataset(const char* name = "reddit", double scale = 0.15) {
  auto r = LoadDatasetScaled(name, scale);
  EXPECT_TRUE(r.ok());
  return r.MoveValueUnsafe();
}

HongTuOptions BaseOptions(DedupLevel level, int chunks, int depth) {
  HongTuOptions o;
  o.num_devices = 4;
  o.device_capacity_bytes = kBig;
  o.chunks_per_partition = chunks;
  o.dedup = level;
  o.pipeline_depth = depth;
  return o;
}

class PipelineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<GnnKind, DedupLevel, int>> {};

TEST_P(PipelineEquivalenceTest, PipelinedMatchesSerial) {
  const auto& [kind, level, chunks] = GetParam();
  Dataset ds = SmallDataset();
  ModelConfig cfg =
      ModelConfig::Make(kind, ds.feature_dim(), 16, ds.num_classes, 2, 99);

  auto serial =
      HongTuEngine::Create(&ds, cfg, BaseOptions(level, chunks, /*depth=*/0));
  auto piped =
      HongTuEngine::Create(&ds, cfg, BaseOptions(level, chunks, /*depth=*/2));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(piped.ok()) << piped.status().ToString();
  auto& se = *serial.ValueOrDie();
  auto& pe = *piped.ValueOrDie();

  for (int epoch = 0; epoch < 2; ++epoch) {
    auto a = se.TrainEpoch();
    auto b = pe.TrainEpoch();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_NEAR(a.ValueOrDie().loss, b.ValueOrDie().loss, 1e-4)
        << "epoch " << epoch;
    EXPECT_NEAR(a.ValueOrDie().train_accuracy, b.ValueOrDie().train_accuracy,
                1e-4)
        << "epoch " << epoch;
  }
  auto aa = se.EvaluateAccuracy(SplitRole::kVal);
  auto bb = pe.EvaluateAccuracy(SplitRole::kVal);
  ASSERT_TRUE(aa.ok() && bb.ok());
  EXPECT_NEAR(aa.ValueOrDie(), bb.ValueOrDie(), 1e-4);

  auto pa = se.model()->AllParams();
  auto pb = pe.model()->AllParams();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LE(Tensor::MaxAbsDiff(*pa[i], *pb[i]), 1e-4) << "param " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsLevelsChunks, PipelineEquivalenceTest,
    ::testing::Combine(::testing::Values(GnnKind::kGcn, GnnKind::kSage,
                                         GnnKind::kGin, GnnKind::kGat,
                                         GnnKind::kGgnn),
                       ::testing::Values(DedupLevel::kNone, DedupLevel::kP2P,
                                         DedupLevel::kP2PReuse),
                       ::testing::Values(1, 3, 8)));

TEST(HongTuPipeline, DeeperPipelineStillMatches) {
  Dataset ds = SmallDataset();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 5);
  auto serial = HongTuEngine::Create(
      &ds, cfg, BaseOptions(DedupLevel::kP2PReuse, 6, /*depth=*/0));
  auto piped = HongTuEngine::Create(
      &ds, cfg, BaseOptions(DedupLevel::kP2PReuse, 6, /*depth=*/4));
  ASSERT_TRUE(serial.ok() && piped.ok());
  auto a = serial.ValueOrDie()->TrainEpoch();
  auto b = piped.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a.ValueOrDie().loss, b.ValueOrDie().loss, 1e-4);
}

TEST(HongTuPipeline, ReportsOverlapAndBeatsSerialSimTime) {
  // The acceptance direction of ISSUE 2: with several chunks in flight the
  // pipelined executor hides communication behind compute, so simulated
  // epoch time drops below the serial executor's and the hidden seconds
  // show up in the overlapped meter.
  Dataset ds = SmallDataset("it-2004", 0.2);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 32,
                                      ds.num_classes, 2, 11);
  auto serial = HongTuEngine::Create(
      &ds, cfg, BaseOptions(DedupLevel::kP2PReuse, 8, /*depth=*/0));
  auto piped = HongTuEngine::Create(
      &ds, cfg, BaseOptions(DedupLevel::kP2PReuse, 8, /*depth=*/3));
  ASSERT_TRUE(serial.ok() && piped.ok());
  auto a = serial.ValueOrDie()->TrainEpoch();
  auto b = piped.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(a.ok() && b.ok());
  const EpochStats& sa = a.ValueOrDie();
  const EpochStats& sb = b.ValueOrDie();
  EXPECT_DOUBLE_EQ(sa.time.overlapped, 0.0);
  EXPECT_GT(sb.time.overlapped, 0.0);
  EXPECT_LT(sb.time.total(), sb.time.busy());
  EXPECT_LT(sb.SimSeconds(), sa.SimSeconds());
  // Busy seconds (the Fig. 9 stacks) stay comparable across executors.
  EXPECT_NEAR(sa.time.busy(), sb.time.busy(), 0.15 * sa.time.busy());
}

TEST(HongTuPipeline, PipelineCostsDeviceMemory) {
  // Extra in-flight chunk buffers must be visible to the memory model.
  Dataset ds = SmallDataset();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 7);
  auto serial = HongTuEngine::Create(
      &ds, cfg, BaseOptions(DedupLevel::kP2PReuse, 4, /*depth=*/0));
  auto piped = HongTuEngine::Create(
      &ds, cfg, BaseOptions(DedupLevel::kP2PReuse, 4, /*depth=*/3));
  ASSERT_TRUE(serial.ok() && piped.ok());
  auto a = serial.ValueOrDie()->TrainEpoch();
  auto b = piped.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b.ValueOrDie().peak_device_bytes,
            a.ValueOrDie().peak_device_bytes);
}

TEST(HongTuPipeline, FallsBackToSerialWhenPipelineDoesNotFit) {
  // Same capacity regime as engine_test's FitsWhereInMemoryOoms: the
  // pipelined working set may not fit tight devices, but the epoch must
  // still complete via the per-layer serial fallback rather than OOM.
  Dataset ds = SmallDataset("it-2004", 0.2);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 32,
                                      ds.num_classes, 3, 1);
  HongTuOptions o = BaseOptions(DedupLevel::kP2PReuse, 16, /*depth=*/4);
  o.device_capacity_bytes = 6ll << 20;
  auto e = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok());
  auto r = e.ValueOrDie()->TrainEpoch();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(CommExecutor, ForwardLoadSlotRejectsBadSlot) {
  Dataset ds = SmallDataset();
  auto tl = BuildTwoLevelPartition(ds.graph, 2, 2, {});
  ASSERT_TRUE(tl.ok());
  auto plan = BuildDedupPlan(tl.ValueOrDie(), DedupLevel::kP2PReuse);
  ASSERT_TRUE(plan.ok());
  CommExecutor exec(&tl.ValueOrDie(), &plan.ValueOrDie(), nullptr);
  ASSERT_TRUE(exec.BeginLayer(8, 2).ok());
  Tensor host(ds.graph.num_vertices(), 8);
  EXPECT_TRUE(exec.ForwardLoadSlot(0, 2, host).IsInvalid());
  EXPECT_TRUE(exec.ForwardLoadSlot(0, -1, host).IsInvalid());
  EXPECT_TRUE(exec.ForwardLoadSlot(0, 1, host).ok());
}

}  // namespace
}  // namespace hongtu
