// Unit tests for hongtu/tensor: Tensor storage, dense kernels and Adam.

#include <gtest/gtest.h>

#include <cmath>

#include "hongtu/tensor/adam.h"
#include "hongtu/tensor/ops.h"
#include "hongtu/tensor/pool.h"
#include "hongtu/tensor/tensor.h"

namespace hongtu {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  EXPECT_EQ(t.bytes(), 48);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(Tensor, FillAndAt) {
  Tensor t(2, 2);
  t.Fill(3.5f);
  EXPECT_EQ(t.at(1, 1), 3.5f);
  t.at(0, 1) = -1.0f;
  EXPECT_EQ(t.at(0, 1), -1.0f);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t(2, 2);
  t.at(0, 0) = 5.0f;
  Tensor c = t.Clone();
  c.at(0, 0) = 9.0f;
  EXPECT_EQ(t.at(0, 0), 5.0f);
}

TEST(Tensor, UninitializedHasShapeAndOwnership) {
  Tensor t = Tensor::Uninitialized(4, 8);
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 8);
  EXPECT_TRUE(t.owns_data());
  EXPECT_GE(t.capacity(), t.size());
  t.Fill(1.5f);  // contents are writable immediately
  EXPECT_EQ(t.at(3, 7), 1.5f);
}

TEST(Tensor, EnsureShapeKeepsBufferWithinCapacity) {
  // In-place reuse is pooled-mode behavior; pin it so the test also passes
  // under HONGTU_DISABLE_POOL=1 (where EnsureShape reallocates on any
  // shape change, restoring the pre-pool semantics).
  const bool saved = TensorPool::Global().enabled();
  TensorPool::Global().SetEnabled(true);
  Tensor t = Tensor::Uninitialized(10, 10);
  const float* p = t.data();
  t.EnsureShape(5, 10);
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.data(), p);
  t.EnsureShapeZeroed(2, 10);
  EXPECT_EQ(t.data(), p);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
  TensorPool::Global().SetEnabled(saved);
}

TEST(Tensor, RowSliceAliasesRows) {
  Tensor t(4, 3);
  for (int64_t i = 0; i < t.size(); ++i) t.data()[i] = static_cast<float>(i);
  Tensor s = t.RowSlice(1, 2);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 3);
  EXPECT_FALSE(s.owns_data());
  EXPECT_EQ(s.at(0, 0), t.at(1, 0));
  // Writes through the source are visible in the slice (shared storage).
  t.at(1, 1) = -7.0f;
  EXPECT_EQ(s.at(0, 1), -7.0f);
}

TEST(Tensor, MoveTransfersOwnership) {
  Tensor t(3, 3);
  t.Fill(2.0f);
  const float* p = t.data();
  Tensor m = std::move(t);
  EXPECT_EQ(m.data(), p);
  EXPECT_TRUE(m.owns_data());
  EXPECT_EQ(t.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(t.size(), 0);
}

TEST(Tensor, CopyFromShapeChecked) {
  Tensor a(2, 3), b(3, 2);
  EXPECT_TRUE(a.CopyFrom(b).IsInvalid());
  Tensor c(2, 3);
  c.Fill(1.0f);
  ASSERT_TRUE(a.CopyFrom(c).ok());
  EXPECT_EQ(a.at(1, 2), 1.0f);
}

TEST(Tensor, GlorotDeterministicAndBounded) {
  Tensor a = Tensor::GlorotUniform(16, 8, 42);
  Tensor b = Tensor::GlorotUniform(16, 8, 42);
  EXPECT_EQ(Tensor::MaxAbsDiff(a, b), 0.0);
  const float limit = std::sqrt(6.0f / 24.0f);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(std::fabs(a.data()[i]), limit);
  }
  Tensor c = Tensor::GlorotUniform(16, 8, 43);
  EXPECT_GT(Tensor::MaxAbsDiff(a, c), 0.0);
}

TEST(Tensor, MaxAbsDiffShapeMismatchIsInf) {
  Tensor a(2, 2), b(2, 3);
  EXPECT_TRUE(std::isinf(Tensor::MaxAbsDiff(a, b)));
}

TEST(Tensor, NormOfUnitRows) {
  Tensor t(4, 1);
  t.Fill(1.0f);
  EXPECT_NEAR(t.Norm(), 2.0, 1e-6);
}

TEST(Ops, MatmulSmall) {
  Tensor a(2, 3), b(3, 2), c(2, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  float av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  ops::Matmul(a, b, &c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(Ops, MatmulTransAAccumMatchesExplicit) {
  Tensor a(3, 2), b(3, 4);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = 0.1f * (i + 1);
  for (int64_t i = 0; i < b.size(); ++i) b.data()[i] = 0.2f * (i + 1);
  Tensor c(2, 4);
  c.Fill(1.0f);  // verify accumulation
  ops::MatmulTransAAccum(a, b, &c);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      float expect = 1.0f;
      for (int64_t k = 0; k < 3; ++k) expect += a.at(k, i) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), expect, 1e-5);
    }
  }
}

TEST(Ops, MatmulTransBMatchesExplicit) {
  Tensor a(2, 3), b(4, 3), c(2, 4);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = 0.3f * (i + 1);
  for (int64_t i = 0; i < b.size(); ++i) b.data()[i] = -0.1f * (i + 1);
  ops::MatmulTransB(a, b, &c);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      float expect = 0.0f;
      for (int64_t k = 0; k < 3; ++k) expect += a.at(i, k) * b.at(j, k);
      EXPECT_NEAR(c.at(i, j), expect, 1e-5);
    }
  }
}

TEST(Ops, ReluAndBackward) {
  Tensor x(1, 4);
  float xv[] = {-2, -0.5, 0.5, 2};
  std::copy(xv, xv + 4, x.data());
  Tensor y(1, 4);
  ops::Relu(x, &y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0);
  EXPECT_FLOAT_EQ(y.at(0, 2), 0.5);
  Tensor dy(1, 4);
  dy.Fill(1.0f);
  Tensor dx(1, 4);
  ops::ReluBackward(x, dy, &dx);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0);
  EXPECT_FLOAT_EQ(dx.at(0, 1), 0);
  EXPECT_FLOAT_EQ(dx.at(0, 2), 1);
  EXPECT_FLOAT_EQ(dx.at(0, 3), 1);
}

TEST(Ops, AddAxpyScale) {
  Tensor x(1, 3), y(1, 3);
  x.Fill(2.0f);
  y.Fill(1.0f);
  ops::AddInPlace(x, &y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);
  ops::Axpy(0.5f, x, &y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 4.0f);
  ops::Scale(0.25f, &y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0f);
}

TEST(Ops, LeakyReluScalar) {
  EXPECT_FLOAT_EQ(ops::LeakyRelu(2.0f, 0.2f), 2.0f);
  EXPECT_FLOAT_EQ(ops::LeakyRelu(-2.0f, 0.2f), -0.4f);
  EXPECT_FLOAT_EQ(ops::LeakyReluGrad(1.0f, 0.2f), 1.0f);
  EXPECT_FLOAT_EQ(ops::LeakyReluGrad(-1.0f, 0.2f), 0.2f);
}

TEST(Adam, DescendsQuadratic) {
  // Minimize f(w) = 0.5 * w^2; grad = w.
  Tensor w(1, 1);
  w.at(0, 0) = 5.0f;
  AdamOptions opts;
  opts.lr = 0.2f;
  Adam adam(opts);
  adam.Register(&w);
  for (int step = 0; step < 200; ++step) {
    Tensor g = w.Clone();
    ASSERT_TRUE(adam.Step({&g}).ok());
  }
  EXPECT_NEAR(w.at(0, 0), 0.0f, 0.05f);
}

TEST(Adam, RejectsWrongGradCount) {
  Tensor w(1, 1);
  Adam adam;
  adam.Register(&w);
  EXPECT_TRUE(adam.Step({}).IsInvalid());
}

TEST(Adam, RejectsWrongGradShape) {
  Tensor w(2, 2), g(1, 1);
  Adam adam;
  adam.Register(&w);
  EXPECT_TRUE(adam.Step({&g}).IsInvalid());
}

TEST(Adam, WeightDecayShrinksParams) {
  Tensor w(1, 1);
  w.at(0, 0) = 1.0f;
  AdamOptions opts;
  opts.lr = 0.01f;
  opts.weight_decay = 1.0f;
  Adam adam(opts);
  adam.Register(&w);
  Tensor g(1, 1);  // zero gradient; only decay acts
  for (int step = 0; step < 50; ++step) ASSERT_TRUE(adam.Step({&g}).ok());
  EXPECT_LT(w.at(0, 0), 1.0f);
}

}  // namespace
}  // namespace hongtu
