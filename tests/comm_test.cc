// Tests for the deduplicated communication framework: plan invariants,
// Algorithm 4 reorganization, and the executor's data movement.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_set>

#include "hongtu/comm/dedup_plan.h"
#include "hongtu/comm/executor.h"
#include "hongtu/comm/reorganize.h"
#include "hongtu/graph/datasets.h"

namespace hongtu {
namespace {

constexpr int64_t kF32 = 4;

struct CommSetup {
  Dataset ds;
  TwoLevelPartition tl;
};

CommSetup MakeSetup(const std::string& name, int m, int n, bool reorganize) {
  auto dsr = LoadDatasetScaled(name, 0.05);
  EXPECT_TRUE(dsr.ok());
  CommSetup s{dsr.MoveValueUnsafe(), {}};
  auto tlr = BuildTwoLevelPartition(s.ds.graph, m, n);
  EXPECT_TRUE(tlr.ok());
  s.tl = tlr.MoveValueUnsafe();
  if (reorganize) {
    EXPECT_TRUE(ReorganizePartition(&s.tl).ok());
  }
  return s;
}

TEST(DedupLevel, Names) {
  EXPECT_STREQ(DedupLevelName(DedupLevel::kNone), "Baseline");
  EXPECT_STREQ(DedupLevelName(DedupLevel::kP2P), "+P2P");
  EXPECT_STREQ(DedupLevelName(DedupLevel::kP2PReuse), "+RU");
}

TEST(CommVolumes, Eq4CostDecreasesWithDedup) {
  // With paper throughputs, converting H2D volume into D2D/RU must lower C.
  InterconnectParams p;
  CommVolumes all_hd{1000, 1000, 1000, 0};    // no dedup possible
  CommVolumes deduped{1000, 600, 400, 0};     // 400 via NVLink, 200 in-place
  EXPECT_LT(deduped.CostSeconds(p, 256), all_hd.CostSeconds(p, 256));
}

class PlanParamTest : public ::testing::TestWithParam<
                          std::tuple<std::string, int, int, DedupLevel>> {};

TEST_P(PlanParamTest, Invariants) {
  const auto& [name, m, n, level] = GetParam();
  CommSetup s = MakeSetup(name, m, n, /*reorganize=*/true);
  auto planr = BuildDedupPlan(s.tl, level);
  ASSERT_TRUE(planr.ok()) << planr.status().ToString();
  const DedupPlan& plan = planr.ValueOrDie();

  // Volume identities: v_ru <= v_p2p <= v_ori; v_ori = sum of neighbor sets.
  int64_t v_ori = 0;
  for (const auto& row : s.tl.chunks) {
    for (const Chunk& c : row) v_ori += c.num_neighbors();
  }
  EXPECT_EQ(plan.volumes.v_ori, v_ori);
  EXPECT_LE(plan.volumes.v_ru, plan.volumes.v_p2p);
  EXPECT_LE(plan.volumes.v_p2p, plan.volumes.v_ori);
  EXPECT_GE(plan.volumes.v_ru, 0);

  for (int i = 0; i < m; ++i) {
    // Slots stay within the declared buffer size.
    for (int j = 0; j < n; ++j) {
      const TransitionStep& step = plan.transition[i][j];
      ASSERT_EQ(step.vertices.size(), step.slots.size());
      ASSERT_EQ(step.vertices.size(), step.reused.size());
      ASSERT_EQ(step.vertices.size(), step.flush.size());
      EXPECT_TRUE(std::is_sorted(step.vertices.begin(), step.vertices.end()));
      std::set<int32_t> used_slots;
      for (size_t p = 0; p < step.slots.size(); ++p) {
        ASSERT_GE(step.slots[p], 0);
        ASSERT_LT(step.slots[p], plan.buffer_slots[i]);
        EXPECT_TRUE(used_slots.insert(step.slots[p]).second)
            << "duplicate slot within one batch";
        if (j == 0) EXPECT_EQ(step.reused[p], 0) << "batch 0 cannot reuse";
        if (level != DedupLevel::kP2PReuse) EXPECT_EQ(step.reused[p], 0);
      }
    }
    // Reused vertices keep the slot of the previous batch (stable in-place
    // update, §6).
    for (int j = 1; j < n; ++j) {
      const TransitionStep& prev = plan.transition[i][j - 1];
      const TransitionStep& step = plan.transition[i][j];
      for (size_t p = 0; p < step.vertices.size(); ++p) {
        if (!step.reused[p]) continue;
        EXPECT_EQ(prev.SlotOf(step.vertices[p]), step.slots[p]);
      }
    }
  }

  // Owner split: at levels >= P2P, each transition vertex is handled by its
  // metis partition; across devices the steps of one batch partition the
  // batch union.
  if (level != DedupLevel::kNone) {
    for (int j = 0; j < n; ++j) {
      std::set<VertexId> uni;
      for (int i = 0; i < m; ++i) {
        for (VertexId v : plan.transition[i][j].vertices) {
          EXPECT_EQ(s.tl.partition_of[v], i);
          EXPECT_TRUE(uni.insert(v).second) << "vertex owned twice";
        }
      }
      std::set<VertexId> expect;
      for (int i = 0; i < m; ++i) {
        expect.insert(s.tl.chunks[i][j].neighbors.begin(),
                      s.tl.chunks[i][j].neighbors.end());
      }
      EXPECT_EQ(uni, expect);
    }
  }

  // Fetch plans resolve every chunk neighbor to a valid owner slot.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const Chunk& c = s.tl.chunks[i][j];
      const FetchPlan& f = plan.fetch[i][j];
      ASSERT_EQ(f.owner.size(), c.neighbors.size());
      for (size_t p = 0; p < c.neighbors.size(); ++p) {
        const int owner = f.owner[p];
        ASSERT_GE(owner, 0);
        ASSERT_LT(owner, m);
        const TransitionStep& step = plan.transition[owner][j];
        const auto it = std::lower_bound(step.vertices.begin(),
                                         step.vertices.end(), c.neighbors[p]);
        ASSERT_TRUE(it != step.vertices.end() && *it == c.neighbors[p]);
        EXPECT_EQ(step.slots[it - step.vertices.begin()], f.slot[p]);
        if (level == DedupLevel::kNone) EXPECT_EQ(owner, i);
      }
    }
  }

  // H2D rows actually loaded match the level's analytic volume.
  int64_t loaded = 0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const TransitionStep& step = plan.transition[i][j];
      for (uint8_t r : step.reused) {
        if (!r) ++loaded;
      }
    }
  }
  if (level == DedupLevel::kNone) {
    EXPECT_EQ(loaded, plan.volumes.v_ori);
  } else if (level == DedupLevel::kP2P) {
    EXPECT_EQ(loaded, plan.volumes.v_p2p);
  } else {
    EXPECT_EQ(loaded, plan.volumes.v_ru);
  }

  // Flush schedule: per device, every transition vertex's gradient is
  // flushed at least once, and exactly once per maximal run of consecutive
  // batches containing it.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const TransitionStep& step = plan.transition[i][j];
      for (size_t p = 0; p < step.vertices.size(); ++p) {
        if (j == n - 1) {
          EXPECT_EQ(step.flush[p], 1) << "last batch must flush everything";
        }
        if (!step.flush[p]) {
          // Retained => present in the next batch with the same slot.
          const TransitionStep& next = plan.transition[i][j + 1];
          EXPECT_EQ(next.SlotOf(step.vertices[p]), step.slots[p]);
        }
      }
    }
  }
}

TEST_P(PlanParamTest, PrecomputedCountsAndGroupsMatchArrays) {
  const auto& [name, m, n, level] = GetParam();
  CommSetup s = MakeSetup(name, m, n, /*reorganize=*/true);
  auto planr = BuildDedupPlan(s.tl, level);
  ASSERT_TRUE(planr.ok()) << planr.status().ToString();
  const DedupPlan& plan = planr.ValueOrDie();

  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      // The per-step traffic counts the executor meters with must equal a
      // recount of the flag arrays.
      const TransitionStep& step = plan.transition[i][j];
      int64_t h2d = 0, ru = 0, flush = 0;
      for (size_t p = 0; p < step.vertices.size(); ++p) {
        if (step.reused[p]) {
          ++ru;
        } else {
          ++h2d;
        }
        if (step.flush[p]) ++flush;
      }
      EXPECT_EQ(step.h2d_rows, h2d);
      EXPECT_EQ(step.ru_rows, ru);
      EXPECT_EQ(step.flush_rows, flush);

      // The owner-grouped gather arrays are a permutation of the per-entry
      // owner/slot arrays: every neighbor position appears exactly once, in
      // its owner's group, with the matching slot.
      const FetchPlan& f = plan.fetch[i][j];
      const int64_t nn = static_cast<int64_t>(f.owner.size());
      ASSERT_EQ(static_cast<int>(f.group_off.size()), m + 1);
      ASSERT_EQ(f.group_off.front(), 0);
      ASSERT_EQ(f.group_off.back(), nn);
      ASSERT_EQ(static_cast<int64_t>(f.group_pos.size()), nn);
      ASSERT_EQ(static_cast<int64_t>(f.group_slot.size()), nn);
      std::vector<int> seen(static_cast<size_t>(nn), 0);
      for (int o = 0; o < m; ++o) {
        ASSERT_LE(f.group_off[o], f.group_off[o + 1]);
        for (int64_t k = f.group_off[o]; k < f.group_off[o + 1]; ++k) {
          const int32_t p = f.group_pos[k];
          ASSERT_GE(p, 0);
          ASSERT_LT(p, nn);
          ++seen[static_cast<size_t>(p)];
          EXPECT_EQ(f.owner[p], o);
          EXPECT_EQ(f.slot[p], f.group_slot[k]);
        }
      }
      for (int64_t p = 0; p < nn; ++p) {
        EXPECT_EQ(seen[static_cast<size_t>(p)], 1) << "position " << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanParamTest,
    ::testing::Combine(::testing::Values("it-2004", "friendster"),
                       ::testing::Values(2, 4), ::testing::Values(1, 4, 6),
                       ::testing::Values(DedupLevel::kNone, DedupLevel::kP2P,
                                         DedupLevel::kP2PReuse)));

TEST(Reorganize, PreservesChunkMultiset) {
  CommSetup s = MakeSetup("friendster", 4, 6, /*reorganize=*/false);
  std::multiset<std::string> before, after;
  auto key = [](const Chunk& c) {
    std::string k;
    for (VertexId v : c.dst_vertices) k += std::to_string(v) + ",";
    return k;
  };
  for (int i = 0; i < 4; ++i) {
    for (const Chunk& c : s.tl.chunks[i]) {
      before.insert(std::to_string(i) + "|" + key(c));
    }
  }
  ASSERT_TRUE(ReorganizePartition(&s.tl).ok());
  for (int i = 0; i < 4; ++i) {
    for (const Chunk& c : s.tl.chunks[i]) {
      after.insert(std::to_string(i) + "|" + key(c));
      EXPECT_EQ(c.partition_id, i);
    }
  }
  // Chunks never cross partitions (phase 1 permutes within a partition,
  // phase 2 permutes whole batches).
  EXPECT_EQ(before, after);
}

TEST(Reorganize, DoesNotIncreaseHostCommunication) {
  for (const char* name : {"it-2004", "ogbn-paper", "friendster"}) {
    CommSetup plain = MakeSetup(name, 4, 6, /*reorganize=*/false);
    auto before = BuildDedupPlan(plain.tl, DedupLevel::kP2PReuse);
    ASSERT_TRUE(before.ok());
    CommSetup reorg = MakeSetup(name, 4, 6, /*reorganize=*/true);
    auto after = BuildDedupPlan(reorg.tl, DedupLevel::kP2PReuse);
    ASSERT_TRUE(after.ok());
    EXPECT_LE(after.ValueOrDie().volumes.v_ru,
              before.ValueOrDie().volumes.v_ru)
        << name;
    // Partition-level quantities are invariant under reorganization.
    EXPECT_EQ(after.ValueOrDie().volumes.v_ori,
              before.ValueOrDie().volumes.v_ori);
  }
}

TEST(Reorganize, RejectsEmpty) {
  TwoLevelPartition tl;
  EXPECT_TRUE(ReorganizePartition(&tl).status().IsInvalid());
  EXPECT_TRUE(ReorganizePartition(nullptr).status().IsInvalid());
}

class ExecutorParamTest
    : public ::testing::TestWithParam<std::tuple<DedupLevel, int>> {};

TEST_P(ExecutorParamTest, ForwardDeliversExactRowsAndMeteredTraffic) {
  const auto& [level, n] = GetParam();
  const int m = 4;
  CommSetup s = MakeSetup("friendster", m, n, /*reorganize=*/true);
  auto planr = BuildDedupPlan(s.tl, level);
  ASSERT_TRUE(planr.ok());
  const DedupPlan& plan = planr.ValueOrDie();

  const int dim = 8;
  Tensor host(s.ds.graph.num_vertices(), dim);
  Rng rng(5);
  for (int64_t i = 0; i < host.size(); ++i) {
    host.data()[i] = rng.NextFloat(-1, 1);
  }

  SimPlatform plat(m, 1ll << 30);
  CommExecutor exec(&s.tl, &plan, &plat);
  ASSERT_TRUE(exec.BeginLayer(dim).ok());
  std::vector<Tensor> nbr;
  for (int j = 0; j < n; ++j) {
    ASSERT_TRUE(exec.ForwardLoad(j, host, &nbr).ok());
    for (int i = 0; i < m; ++i) {
      const Chunk& c = s.tl.chunks[i][j];
      ASSERT_EQ(nbr[i].rows(), c.num_neighbors());
      for (int64_t p = 0; p < c.num_neighbors(); ++p) {
        for (int d = 0; d < dim; ++d) {
          ASSERT_EQ(nbr[i].at(p, d), host.at(c.neighbors[p], d))
              << "neighbor row mismatch";
        }
      }
    }
  }
  // H2D bytes equal the plan's analytic loading volume for this level.
  int64_t expect_rows = 0;
  switch (level) {
    case DedupLevel::kNone: expect_rows = plan.volumes.v_ori; break;
    case DedupLevel::kP2P: expect_rows = plan.volumes.v_p2p; break;
    case DedupLevel::kP2PReuse: expect_rows = plan.volumes.v_ru; break;
  }
  EXPECT_EQ(plat.bytes().h2d, expect_rows * dim * kF32);
  EXPECT_EQ(plat.bytes().d2d, plan.volumes.v_remote_fetch * dim * kF32);
  exec.EndLayer();
}

TEST_P(ExecutorParamTest, BackwardMatchesDenseAccumulation) {
  const auto& [level, n] = GetParam();
  const int m = 4;
  CommSetup s = MakeSetup("it-2004", m, n, /*reorganize=*/true);
  auto planr = BuildDedupPlan(s.tl, level);
  ASSERT_TRUE(planr.ok());
  const DedupPlan& plan = planr.ValueOrDie();

  const int dim = 4;
  SimPlatform plat(m, 1ll << 30);
  CommExecutor exec(&s.tl, &plan, &plat);
  ASSERT_TRUE(exec.BeginLayer(dim).ok());

  Tensor host_grad(s.ds.graph.num_vertices(), dim);
  Tensor expect(s.ds.graph.num_vertices(), dim);
  Rng rng(17);
  for (int j = 0; j < n; ++j) {
    std::vector<Tensor> grads(m);
    for (int i = 0; i < m; ++i) {
      const Chunk& c = s.tl.chunks[i][j];
      grads[i] = Tensor(c.num_neighbors(), dim);
      for (int64_t p = 0; p < grads[i].size(); ++p) {
        grads[i].data()[p] = rng.NextFloat(-1, 1);
      }
      for (int64_t p = 0; p < c.num_neighbors(); ++p) {
        for (int d = 0; d < dim; ++d) {
          expect.at(c.neighbors[p], d) += grads[i].at(p, d);
        }
      }
    }
    ASSERT_TRUE(exec.BackwardAccumulate(j, grads, &host_grad).ok());
  }
  EXPECT_LT(Tensor::MaxAbsDiff(host_grad, expect), 1e-4);
  exec.EndLayer();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecutorParamTest,
    ::testing::Combine(::testing::Values(DedupLevel::kNone, DedupLevel::kP2P,
                                         DedupLevel::kP2PReuse),
                       ::testing::Values(1, 3, 6)));

TEST(Executor, BeginLayerDimMismatchRejected) {
  CommSetup s = MakeSetup("it-2004", 2, 2, true);
  auto planr = BuildDedupPlan(s.tl, DedupLevel::kP2PReuse);
  ASSERT_TRUE(planr.ok());
  SimPlatform plat(2, 1ll << 30);
  CommExecutor exec(&s.tl, &planr.ValueOrDie(), &plat);
  ASSERT_TRUE(exec.BeginLayer(8).ok());
  Tensor host(s.ds.graph.num_vertices(), 4);  // wrong dim
  std::vector<Tensor> nbr;
  EXPECT_TRUE(exec.ForwardLoad(0, host, &nbr).IsInvalid());
}

TEST(Executor, DimSwitchAcrossLayersStaysExact) {
  // A 2-layer engine pass switches the executor between feature widths;
  // transition-buffer reuse must never leak rows across BeginLayer calls.
  CommSetup s = MakeSetup("friendster", 4, 4, true);
  auto planr = BuildDedupPlan(s.tl, DedupLevel::kP2PReuse);
  ASSERT_TRUE(planr.ok());
  SimPlatform plat(4, 1ll << 30);
  CommExecutor exec(&s.tl, &planr.ValueOrDie(), &plat);
  Rng rng(77);
  for (int dim : {8, 4, 8}) {
    ASSERT_TRUE(exec.BeginLayer(dim).ok());
    Tensor host(s.ds.graph.num_vertices(), dim);
    for (int64_t i = 0; i < host.size(); ++i) {
      host.data()[i] = rng.NextFloat(-1, 1);
    }
    std::vector<Tensor> nbr;
    for (int j = 0; j < 4; ++j) {
      ASSERT_TRUE(exec.ForwardLoad(j, host, &nbr).ok());
      for (int i = 0; i < 4; ++i) {
        const Chunk& c = s.tl.chunks[i][j];
        for (int64_t p = 0; p < c.num_neighbors(); ++p) {
          for (int d = 0; d < dim; ++d) {
            ASSERT_EQ(nbr[i].at(p, d), host.at(c.neighbors[p], d));
          }
        }
      }
    }
    exec.EndLayer();
  }
}

TEST(Executor, RepeatedBackwardPassesAccumulateIndependently) {
  // Two consecutive layer passes (as in a 2-layer epoch) must each produce
  // the exact dense accumulation; retained slots may not leak between them.
  CommSetup s = MakeSetup("it-2004", 2, 3, true);
  auto planr = BuildDedupPlan(s.tl, DedupLevel::kP2PReuse);
  ASSERT_TRUE(planr.ok());
  SimPlatform plat(2, 1ll << 30);
  CommExecutor exec(&s.tl, &planr.ValueOrDie(), &plat);
  Rng rng(31);
  for (int pass = 0; pass < 2; ++pass) {
    const int dim = 4;
    ASSERT_TRUE(exec.BeginLayer(dim).ok());
    Tensor host_grad(s.ds.graph.num_vertices(), dim);
    Tensor expect(s.ds.graph.num_vertices(), dim);
    for (int j = 0; j < 3; ++j) {
      std::vector<Tensor> grads(2);
      for (int i = 0; i < 2; ++i) {
        const Chunk& c = s.tl.chunks[i][j];
        grads[i] = Tensor(c.num_neighbors(), dim);
        for (int64_t p = 0; p < grads[i].size(); ++p) {
          grads[i].data()[p] = rng.NextFloat(-1, 1);
        }
        for (int64_t p = 0; p < c.num_neighbors(); ++p) {
          for (int d = 0; d < dim; ++d) {
            expect.at(c.neighbors[p], d) += grads[i].at(p, d);
          }
        }
      }
      ASSERT_TRUE(exec.BackwardAccumulate(j, grads, &host_grad).ok());
    }
    EXPECT_LT(Tensor::MaxAbsDiff(host_grad, expect), 1e-4) << "pass " << pass;
    exec.EndLayer();
  }
}

TEST(Executor, OomOnTinyDevice) {
  CommSetup s = MakeSetup("friendster", 2, 2, true);
  auto planr = BuildDedupPlan(s.tl, DedupLevel::kP2PReuse);
  ASSERT_TRUE(planr.ok());
  SimPlatform plat(2, 1024);  // 1 KB devices cannot hold transition buffers
  CommExecutor exec(&s.tl, &planr.ValueOrDie(), &plat);
  EXPECT_TRUE(exec.BeginLayer(64).IsOutOfMemory());
}

}  // namespace
}  // namespace hongtu
