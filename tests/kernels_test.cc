// Equivalence tests for the kernel layer: the blocked SIMD backend must
// match the reference backend to <= 1e-4 max-abs-diff on random and
// power-law-skewed inputs, including edge cases (dim=1, empty chunks,
// zero-degree vertices). Also covers the edge-balanced work partitioner and
// end-to-end layer forward/backward under both backends.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "hongtu/common/parallel.h"
#include "hongtu/gnn/gat_layer.h"
#include "hongtu/gnn/gcn_layer.h"
#include "hongtu/gnn/ggnn_layer.h"
#include "hongtu/gnn/gin_layer.h"
#include "hongtu/gnn/sage_layer.h"
#include "hongtu/graph/builder.h"
#include "hongtu/graph/generators.h"
#include "hongtu/kernels/backend.h"
#include "hongtu/kernels/gemm.h"
#include "hongtu/kernels/schedule.h"
#include "hongtu/kernels/spmm.h"
#include "hongtu/partition/two_level.h"
#include "hongtu/tensor/ops.h"
#include "hongtu/tensor/pool.h"
#include "hongtu/tensor/tensor.h"

namespace hongtu {
namespace {

constexpr double kTol = 1e-4;

/// Restores the seed default backend after each test.
class KernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { kernels::SetBackend(kernels::Backend::kBlocked); }
};

// ---- GEMM ------------------------------------------------------------------

void CheckGemmShape(int64_t m, int64_t k, int64_t n, bool accumulate,
                    kernels::Epilogue ep) {
  const Tensor a = Tensor::Gaussian(m, k, 0.5f, 7 * m + k);
  const Tensor b = Tensor::Gaussian(k, n, 0.5f, 13 * n + k);
  const Tensor bias = Tensor::Gaussian(1, n, 0.5f, 17 + n);
  Tensor c_ref = Tensor::Gaussian(m, n, 0.3f, 23);
  Tensor c_blk = c_ref.Clone();
  kernels::Gemm(kernels::Backend::kReference, a.data(), b.data(),
                c_ref.data(), m, k, n, accumulate, bias.data(), ep);
  kernels::Gemm(kernels::Backend::kBlocked, a.data(), b.data(), c_blk.data(),
                m, k, n, accumulate, bias.data(), ep);
  EXPECT_LE(Tensor::MaxAbsDiff(c_ref, c_blk), kTol)
      << "m=" << m << " k=" << k << " n=" << n << " accum=" << accumulate;
}

TEST_F(KernelsTest, GemmMatchesReferenceAcrossShapes) {
  // Covers exact micro-tile multiples, remainders in every dimension,
  // multi-block K and N, and degenerate row/column counts.
  const int64_t shapes[][3] = {{1, 1, 1},    {3, 5, 7},    {8, 16, 16},
                               {17, 31, 33}, {64, 64, 64}, {129, 300, 47},
                               {256, 512, 80}, {40, 1, 16}, {1, 600, 1}};
  for (const auto& s : shapes) {
    CheckGemmShape(s[0], s[1], s[2], false, kernels::Epilogue::kNone);
  }
}

TEST_F(KernelsTest, GemmEpiloguesMatchReference) {
  for (const auto ep :
       {kernels::Epilogue::kBias, kernels::Epilogue::kBiasRelu,
        kernels::Epilogue::kBiasSigmoid, kernels::Epilogue::kBiasTanh}) {
    CheckGemmShape(65, 48, 33, false, ep);
    CheckGemmShape(65, 48, 33, true, ep);  // accumulate + epilogue
  }
}

TEST_F(KernelsTest, GemmAccumulateMatchesReference) {
  CheckGemmShape(50, 300, 20, true, kernels::Epilogue::kNone);
}

TEST_F(KernelsTest, GemmTransAAccumMatchesReference) {
  const int64_t shapes[][3] = {
      {500, 8, 16}, {1000, 64, 32}, {37, 19, 5}, {2048, 65, 17}};
  for (const auto& s : shapes) {
    const int64_t k = s[0], m = s[1], n = s[2];
    const Tensor a = Tensor::Gaussian(k, m, 0.5f, 31);
    const Tensor b = Tensor::Gaussian(k, n, 0.5f, 37);
    Tensor c_ref = Tensor::Gaussian(m, n, 0.3f, 41);
    Tensor c_blk = c_ref.Clone();
    kernels::GemmTransAAccum(kernels::Backend::kReference, a.data(), b.data(),
                             c_ref.data(), k, m, n);
    kernels::GemmTransAAccum(kernels::Backend::kBlocked, a.data(), b.data(),
                             c_blk.data(), k, m, n);
    EXPECT_LE(Tensor::MaxAbsDiff(c_ref, c_blk), kTol) << "k=" << k;
  }
}

TEST_F(KernelsTest, GemmTransBMatchesReference) {
  const int64_t shapes[][3] = {
      {400, 32, 64}, {33, 17, 129}, {1000, 64, 48}, {5, 3, 2}};
  for (const auto& s : shapes) {
    const int64_t m = s[0], k = s[1], n = s[2];
    const Tensor a = Tensor::Gaussian(m, k, 0.5f, 43);
    const Tensor b = Tensor::Gaussian(n, k, 0.5f, 47);
    Tensor c_ref(m, n), c_blk(m, n);
    kernels::GemmTransB(kernels::Backend::kReference, a.data(), b.data(),
                        c_ref.data(), m, k, n);
    kernels::GemmTransB(kernels::Backend::kBlocked, a.data(), b.data(),
                        c_blk.data(), m, k, n);
    EXPECT_LE(Tensor::MaxAbsDiff(c_ref, c_blk), kTol) << "m=" << m;
  }
}

TEST_F(KernelsTest, ColumnSumAndDotMatchReference) {
  const Tensor x = Tensor::Gaussian(700, 37, 0.5f, 53);
  Tensor out_ref = Tensor::Gaussian(1, 37, 0.2f, 59);
  Tensor out_blk = out_ref.Clone();
  kernels::ColumnSumAccum(kernels::Backend::kReference, x.data(), x.rows(),
                          x.cols(), out_ref.data());
  kernels::ColumnSumAccum(kernels::Backend::kBlocked, x.data(), x.rows(),
                          x.cols(), out_blk.data());
  EXPECT_LE(Tensor::MaxAbsDiff(out_ref, out_blk), kTol);

  const Tensor y = Tensor::Gaussian(700, 37, 0.5f, 61);
  const double d_ref =
      kernels::Dot(kernels::Backend::kReference, x.data(), y.data(), x.size());
  const double d_blk =
      kernels::Dot(kernels::Backend::kBlocked, x.data(), y.data(), x.size());
  EXPECT_NEAR(d_ref, d_blk, kTol * x.size());
}

// ---- Work partitioner ------------------------------------------------------

TEST_F(KernelsTest, ParallelForBalancedCoversEveryItemOnce) {
  // Heavily skewed weights: one hub, a zero-degree tail, random middle.
  Rng rng(71);
  const int64_t n = 5000;
  std::vector<int64_t> prefix(n + 1, 0);
  for (int64_t i = 0; i < n; ++i) {
    int64_t w = rng.NextInt(4);
    if (i == 42) w = 100000;       // hub
    if (i > n - 500) w = 0;        // zero-degree tail
    prefix[i + 1] = prefix[i] + w;
  }
  std::vector<int> covered(n, 0);
  ParallelForBalanced(n, prefix.data(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
#pragma omp atomic
      ++covered[i];
    }
  });
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(covered[i], 1) << i;
}

TEST_F(KernelsTest, ParallelForBalancedHandlesEmptyAndAllZero) {
  std::vector<int64_t> prefix = {0, 0, 0, 0};
  int calls = 0;
  ParallelForBalanced(0, prefix.data(), [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // All-zero weights still visit every item exactly once.
  std::vector<int> covered(3, 0);
  ParallelForBalanced(3, prefix.data(), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) ++covered[i];
  });
  EXPECT_EQ(covered[0] + covered[1] + covered[2], 3);
}

// ---- SpMM ------------------------------------------------------------------

Chunk FullChunk(const Graph& g) {
  std::vector<VertexId> all(g.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  return ExtractChunk(g, std::move(all), 0, 0);
}

/// Power-law-skewed graph (RMAT) — the workload the edge-balanced split is
/// for. Includes self-loop-free vertices with zero in-degree before the
/// builder adds self-loops.
Graph SkewedGraph(int64_t n, int64_t e, uint64_t seed) {
  RmatOptions opts;
  opts.seed = seed;
  auto edges = GenerateRmat(n, e, opts);
  EXPECT_TRUE(edges.ok());
  GraphBuilder b;
  auto g = b.Build(n, edges.MoveValueUnsafe());
  EXPECT_TRUE(g.ok());
  return g.MoveValueUnsafe();
}

Graph RandomGraph(int64_t n, int64_t e, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (int64_t i = 0; i < e; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextInt(n));
    const VertexId v = static_cast<VertexId>(rng.NextInt(n));
    if (u != v) edges.emplace_back(u, v);
  }
  GraphBuilder b;
  auto g = b.Build(n, std::move(edges));
  EXPECT_TRUE(g.ok());
  return g.MoveValueUnsafe();
}

void CheckAggregationPrimitives(const Graph& g, int64_t dim) {
  const Chunk chunk = FullChunk(g);
  const LocalGraph lg = LocalGraph::FromChunk(chunk);
  const Tensor src = Tensor::Gaussian(lg.num_src, dim, 0.7f, 83);
  const Tensor d_dst = Tensor::Gaussian(lg.num_dst, dim, 0.7f, 89);

  using GatherFn = void (*)(const LocalGraph&, const Tensor&, Tensor*);
  const GatherFn gathers[] = {&GatherWeighted, &GatherSum, &GatherMean};
  for (const auto fn : gathers) {
    Tensor ref(lg.num_dst, dim), blk(lg.num_dst, dim);
    kernels::SetBackend(kernels::Backend::kReference);
    fn(lg, src, &ref);
    kernels::SetBackend(kernels::Backend::kBlocked);
    fn(lg, src, &blk);
    EXPECT_LE(Tensor::MaxAbsDiff(ref, blk), kTol) << "dim=" << dim;
  }

  using ScatterFn = void (*)(const LocalGraph&, const Tensor&, Tensor*);
  const ScatterFn scatters[] = {&ScatterWeightedAccum, &ScatterSumAccum,
                                &ScatterMeanAccum};
  for (const auto fn : scatters) {
    Tensor ref = Tensor::Gaussian(lg.num_src, dim, 0.3f, 97);
    Tensor blk = ref.Clone();
    kernels::SetBackend(kernels::Backend::kReference);
    fn(lg, d_dst, &ref);
    kernels::SetBackend(kernels::Backend::kBlocked);
    fn(lg, d_dst, &blk);
    EXPECT_LE(Tensor::MaxAbsDiff(ref, blk), kTol) << "dim=" << dim;
  }
}

TEST_F(KernelsTest, SpmmMatchesReferenceOnRandomGraph) {
  const Graph g = RandomGraph(400, 3000, 101);
  for (const int64_t dim : {1, 5, 16, 33, 64}) {
    CheckAggregationPrimitives(g, dim);
  }
}

TEST_F(KernelsTest, SpmmMatchesReferenceOnPowerLawGraph) {
  const Graph g = SkewedGraph(1024, 16384, 103);
  for (const int64_t dim : {1, 16, 64}) {
    CheckAggregationPrimitives(g, dim);
  }
}

TEST_F(KernelsTest, SpmmHandlesEmptyChunk) {
  const Graph g = RandomGraph(50, 200, 107);
  Chunk chunk = ExtractChunk(g, {}, 0, 0);
  const LocalGraph lg = LocalGraph::FromChunk(chunk);
  const Tensor src(0, 16);
  Tensor dst(0, 16);
  GatherWeighted(lg, src, &dst);  // must not crash
  EXPECT_EQ(dst.size(), 0);
}

TEST_F(KernelsTest, GatherRowsAndScatterRowsHandleMissingSelf) {
  const int64_t dim = 20;
  const Tensor x = Tensor::Gaussian(6, dim, 1.0f, 109);
  const std::vector<int32_t> idx = {3, -1, 0, 5};
  Tensor out(4, dim);
  kernels::GatherRows(kernels::Backend::kBlocked, idx.data(), 4, x.data(),
                      dim, out.data());
  for (int64_t c = 0; c < dim; ++c) {
    EXPECT_EQ(out.at(0, c), x.at(3, c));
    EXPECT_EQ(out.at(1, c), 0.0f);
  }
  Tensor acc_ref(6, dim), acc_blk(6, dim);
  kernels::ScatterRowsAccum(kernels::Backend::kReference, idx.data(), 4,
                            out.data(), 1.5f, dim, acc_ref.data());
  kernels::ScatterRowsAccum(kernels::Backend::kBlocked, idx.data(), 4,
                            out.data(), 1.5f, dim, acc_blk.data());
  EXPECT_LE(Tensor::MaxAbsDiff(acc_ref, acc_blk), kTol);
  EXPECT_NEAR(acc_ref.at(3, 0), 1.5f * out.at(0, 0), 1e-6);
}

// ---- Propagation-blocked (banded) path -------------------------------------

/// A hub graph: every vertex points at vertex 0 and vertex 0 points at a
/// spread of vertices, so one CSC row (and one CSR row) dominates.
Graph StarGraph(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (int64_t u = 1; u < n; ++u) {
    edges.emplace_back(static_cast<VertexId>(u), 0);
    if (rng.NextInt(4) == 0) {
      edges.emplace_back(0, static_cast<VertexId>(u));
    }
  }
  GraphBuilder b;
  auto g = b.Build(n, std::move(edges));
  EXPECT_TRUE(g.ok());
  return g.MoveValueUnsafe();
}

/// All non-self-loop edges live among the first n/8 vertices, so most
/// (shard, band) buckets of a forced-small-band schedule are empty.
Graph EmptyBandGraph(int64_t n, int64_t e, uint64_t seed) {
  Rng rng(seed);
  const int64_t lo_n = std::max<int64_t>(2, n / 8);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (int64_t i = 0; i < e; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextInt(lo_n));
    const VertexId v = static_cast<VertexId>(rng.NextInt(lo_n));
    if (u != v) edges.emplace_back(u, v);
  }
  GraphBuilder b;
  auto g = b.Build(n, std::move(edges));
  EXPECT_TRUE(g.ok());
  return g.MoveValueUnsafe();
}

/// Tiny L2 budget so even test-sized chunks split into several 256-row
/// bands and the ShouldUse table check passes for every dim >= 16.
kernels::EdgeScheduleParams ForcedBandedParams() {
  kernels::EdgeScheduleParams p;
  p.l2_bytes = 512;
  p.max_dim = 1;  // band_rows hits its 256-row floor
  p.num_shards = 4;
  return p;
}

/// All six primitives, banded vs reference, on one chunk.
void CheckBandedPrimitives(const Chunk& chunk, int64_t dim) {
  const ChunkSchedules scheds =
      ChunkSchedules::Build(chunk, ForcedBandedParams());
  const LocalGraph plain = LocalGraph::FromChunk(chunk);
  const LocalGraph banded = LocalGraph::FromChunk(chunk, &scheds);
  const Tensor src = Tensor::Gaussian(plain.num_src, dim, 0.7f, 211);
  const Tensor d_dst = Tensor::Gaussian(plain.num_dst, dim, 0.7f, 223);

  using GatherFn = void (*)(const LocalGraph&, const Tensor&, Tensor*);
  const GatherFn gathers[] = {&GatherWeighted, &GatherSum, &GatherMean};
  for (const auto fn : gathers) {
    Tensor ref(plain.num_dst, dim), out(plain.num_dst, dim);
    kernels::SetBackend(kernels::Backend::kReference);
    fn(plain, src, &ref);
    kernels::SetBackend(kernels::Backend::kBlocked);
    fn(banded, src, &out);
    EXPECT_LE(Tensor::MaxAbsDiff(ref, out), kTol) << "gather dim=" << dim;
  }

  using ScatterFn = void (*)(const LocalGraph&, const Tensor&, Tensor*);
  const ScatterFn scatters[] = {&ScatterWeightedAccum, &ScatterSumAccum,
                                &ScatterMeanAccum};
  for (const auto fn : scatters) {
    Tensor ref = Tensor::Gaussian(plain.num_src, dim, 0.3f, 227);
    Tensor out = ref.Clone();
    kernels::SetBackend(kernels::Backend::kReference);
    fn(plain, d_dst, &ref);
    kernels::SetBackend(kernels::Backend::kBlocked);
    fn(banded, d_dst, &out);
    EXPECT_LE(Tensor::MaxAbsDiff(ref, out), kTol) << "scatter dim=" << dim;
  }
}

TEST_F(KernelsTest, BandedMatchesReferenceAcrossChunkShapes) {
  const Graph uniform = RandomGraph(2000, 16000, 307);
  const Graph power_law = SkewedGraph(2048, 24576, 311);
  const Graph star = StarGraph(1500, 313);
  const Graph empty_band = EmptyBandGraph(2048, 12000, 317);
  for (const Graph* g : {&uniform, &power_law, &star, &empty_band}) {
    const Chunk chunk = FullChunk(*g);
    // Dims below 16 (and non-accumulating gathers below 32) take the
    // documented single-pass fallback; equivalence must hold either way.
    for (const int64_t dim : {1, 8, 16, 64, 256}) {
      CheckBandedPrimitives(chunk, dim);
    }
  }
}

TEST_F(KernelsTest, BandedMatchesReferenceOnHongTuStyleChunks) {
  // Chunked views (a partition's dst ranges), not just full-graph chunks.
  const Graph g = SkewedGraph(2048, 24576, 331);
  const int64_t n = g.num_vertices();
  for (int c = 0; c < 4; ++c) {
    std::vector<VertexId> dsts;
    for (int64_t v = n * c / 4; v < n * (c + 1) / 4; ++v) {
      dsts.push_back(static_cast<VertexId>(v));
    }
    const Chunk chunk = ExtractChunk(g, std::move(dsts), 0, c);
    CheckBandedPrimitives(chunk, 64);
  }
}

TEST_F(KernelsTest, EdgeScheduleInvariants) {
  const Graph g = SkewedGraph(2048, 24576, 401);
  const Chunk chunk = FullChunk(g);
  const kernels::EdgeSchedule s = kernels::EdgeSchedule::Build(
      chunk.num_dst(), chunk.in_offsets.data(), chunk.nbr_idx.data(),
      chunk.in_weights.data(), chunk.num_neighbors(), ForcedBandedParams());
  const int64_t E = chunk.num_edges();
  ASSERT_EQ(s.num_edges(), E);
  ASSERT_GE(s.num_bands(), 2) << "forced params must produce real bands";
  const int S = s.num_shards();
  const int B = s.num_bands();

  // Bucket offsets tile [0, E] monotonically; shard prefix rides on them.
  const int64_t* bo = s.bucket_offsets();
  EXPECT_EQ(bo[0], 0);
  EXPECT_EQ(bo[static_cast<int64_t>(S) * B], E);
  for (int64_t i = 0; i < static_cast<int64_t>(S) * B; ++i) {
    EXPECT_LE(bo[i], bo[i + 1]);
  }
  for (int t = 0; t <= S; ++t) {
    EXPECT_EQ(s.shard_edge_prefix()[t], bo[static_cast<int64_t>(t) * B]);
  }

  // edge_perm is a bijection on [0, E); every permuted entry matches the
  // original edge's source, weight, and (masked) destination row; bucket
  // membership respects the band's source extent and the shard's row range.
  std::vector<int> seen(static_cast<size_t>(E), 0);
  std::vector<int> flags_per_row(static_cast<size_t>(chunk.num_dst()), 0);
  for (int t = 0; t < S; ++t) {
    for (int b = 0; b < B; ++b) {
      for (int64_t k = bo[t * B + b]; k < bo[t * B + b + 1]; ++k) {
        const int32_t e = s.edge_perm()[k];
        ASSERT_GE(e, 0);
        ASSERT_LT(e, E);
        ++seen[static_cast<size_t>(e)];
        const int32_t rnd = s.rnd_perm()[k];
        EXPECT_EQ(rnd, chunk.nbr_idx[static_cast<size_t>(e)]);
        EXPECT_GE(rnd, static_cast<int64_t>(b) * s.band_rows());
        EXPECT_LT(rnd, static_cast<int64_t>(b + 1) * s.band_rows());
        EXPECT_EQ(s.w_perm()[k], chunk.in_weights[static_cast<size_t>(e)]);
        const int32_t d =
            s.out_perm()[k] & kernels::EdgeSchedule::kRowMask;
        EXPECT_GE(d, s.shard_row_bounds()[t]);
        EXPECT_LT(d, s.shard_row_bounds()[t + 1]);
        EXPECT_GE(e, chunk.in_offsets[d]);
        EXPECT_LT(e, chunk.in_offsets[d + 1]);
        if (s.out_perm()[k] < 0) ++flags_per_row[static_cast<size_t>(d)];
      }
    }
  }
  for (int64_t e = 0; e < E; ++e) {
    EXPECT_EQ(seen[static_cast<size_t>(e)], 1) << "edge " << e;
  }
  // Exactly one first-run flag per row with edges (self-loops: every row).
  EXPECT_EQ(s.num_zero_rows(), 0);
  for (int64_t d = 0; d < chunk.num_dst(); ++d) {
    EXPECT_EQ(flags_per_row[static_cast<size_t>(d)], 1) << "row " << d;
  }
}

TEST_F(KernelsTest, EdgeScheduleHandlesZeroDegreeRowsAndHeuristics) {
  // Hand-built structure with empty rows (no self-loops): rows 1 and 3.
  const std::vector<int64_t> offsets = {0, 2, 2, 5, 5, 6};
  const std::vector<int32_t> idx = {4, 700, 3, 900, 1023, 512};
  const std::vector<float> w = {1, 2, 3, 4, 5, 6};
  kernels::EdgeScheduleParams p = ForcedBandedParams();
  const kernels::EdgeSchedule s =
      kernels::EdgeSchedule::Build(5, offsets.data(), idx.data(), w.data(),
                                   1024, p);
  ASSERT_EQ(s.num_zero_rows(), 2);
  EXPECT_EQ(s.zero_rows()[0], 1);
  EXPECT_EQ(s.zero_rows()[1], 3);
  EXPECT_EQ(s.num_bands(), 4);  // 1024 rows / 256-row floor

  // The heuristic: banded only for supported widths on L2-exceeding tables,
  // and only for accumulating calls below 32 columns.
  EXPECT_TRUE(s.ShouldUse(64, false));
  EXPECT_TRUE(s.ShouldUse(16, true));
  EXPECT_FALSE(s.ShouldUse(16, false));
  EXPECT_FALSE(s.ShouldUse(8, true));
  EXPECT_FALSE(s.ShouldUse(512, false));

  // Banded SpMM must zero the empty rows in non-accumulating mode.
  const int64_t dim = 64;
  const Tensor x = Tensor::Gaussian(1024, dim, 0.5f, 409);
  Tensor ref = Tensor::Gaussian(5, dim, 9.0f, 419);  // garbage to overwrite
  Tensor out = ref.Clone();
  kernels::Spmm(kernels::Backend::kReference, kernels::EdgeWeight::kExplicit,
                5, offsets.data(), idx.data(), w.data(), nullptr, x.data(),
                dim, /*accumulate=*/false, ref.data());
  kernels::Spmm(kernels::Backend::kBlocked, kernels::EdgeWeight::kExplicit,
                5, offsets.data(), idx.data(), w.data(), nullptr, x.data(),
                dim, /*accumulate=*/false, out.data(), &s);
  EXPECT_LE(Tensor::MaxAbsDiff(ref, out), kTol);
  for (int64_t c = 0; c < dim; ++c) {
    EXPECT_EQ(out.at(1, c), 0.0f);
    EXPECT_EQ(out.at(3, c), 0.0f);
  }
}

TEST_F(KernelsTest, EdgeScheduleReuseAllocatesNothing) {
  const Graph g = SkewedGraph(2048, 24576, 431);
  const Chunk chunk = FullChunk(g);
  const ChunkSchedules scheds =
      ChunkSchedules::Build(chunk, ForcedBandedParams());
  const LocalGraph banded = LocalGraph::FromChunk(chunk, &scheds);
  ASSERT_TRUE(scheds.gather.ShouldUse(64, false));
  ASSERT_TRUE(scheds.scatter.ShouldUse(64, true));
  const Tensor src = Tensor::Gaussian(banded.num_src, 64, 0.5f, 433);
  const Tensor d_dst = Tensor::Gaussian(banded.num_dst, 64, 0.5f, 439);
  Tensor dst(banded.num_dst, 64);
  Tensor d_src(banded.num_src, 64);
  kernels::SetBackend(kernels::Backend::kBlocked);
  // Epoch-reuse contract: the compiled schedule serves every subsequent
  // call without touching the heap or the pool.
  const PoolStats before = TensorPool::Global().stats();
  for (int epoch = 0; epoch < 3; ++epoch) {
    GatherWeighted(banded, src, &dst);
    ScatterWeightedAccum(banded, d_dst, &d_src);
  }
  const PoolStats after = TensorPool::Global().stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.hits, before.hits);
}

TEST_F(KernelsTest, PrecountedHistogramMatchesDirectBuild) {
  // ChunkSchedules::Build derives the scatter mirror's (shard, band)
  // histogram from one walk of the CSC edges and hands both directions'
  // counts to EdgeSchedule::Build, which then skips its counting pass. The
  // compiled schedules must be identical, array for array, to the direct
  // self-counted builds.
  for (const uint64_t seed : {443ull, 449ull}) {
    const Graph g = SkewedGraph(2048, 24576, seed);
    const Chunk chunk = FullChunk(g);
    const kernels::EdgeScheduleParams p = ForcedBandedParams();
    const ChunkSchedules fused = ChunkSchedules::Build(chunk, p);
    const kernels::EdgeSchedule gather = kernels::EdgeSchedule::Build(
        chunk.num_dst(), chunk.in_offsets.data(), chunk.nbr_idx.data(),
        chunk.in_weights.data(), chunk.num_neighbors(), p);
    const kernels::EdgeSchedule scatter = kernels::EdgeSchedule::Build(
        chunk.num_neighbors(), chunk.src_offsets.data(), chunk.dst_idx.data(),
        chunk.src_weights.data(), chunk.num_dst(), p);
    const auto check = [](const kernels::EdgeSchedule& a,
                          const kernels::EdgeSchedule& b, const char* which) {
      ASSERT_EQ(a.num_edges(), b.num_edges()) << which;
      ASSERT_EQ(a.num_bands(), b.num_bands()) << which;
      ASSERT_EQ(a.num_shards(), b.num_shards()) << which;
      ASSERT_EQ(a.num_zero_rows(), b.num_zero_rows()) << which;
      const int64_t nb =
          static_cast<int64_t>(a.num_shards()) * a.num_bands() + 1;
      for (int64_t i = 0; i < nb; ++i) {
        ASSERT_EQ(a.bucket_offsets()[i], b.bucket_offsets()[i]) << which;
      }
      for (int t = 0; t <= a.num_shards(); ++t) {
        ASSERT_EQ(a.shard_edge_prefix()[t], b.shard_edge_prefix()[t]) << which;
        ASSERT_EQ(a.shard_row_bounds()[t], b.shard_row_bounds()[t]) << which;
      }
      for (int64_t k = 0; k < a.num_edges(); ++k) {
        ASSERT_EQ(a.rnd_perm()[k], b.rnd_perm()[k]) << which << " k=" << k;
        ASSERT_EQ(a.out_perm()[k], b.out_perm()[k]) << which << " k=" << k;
        ASSERT_EQ(a.edge_perm()[k], b.edge_perm()[k]) << which << " k=" << k;
        ASSERT_EQ(a.w_perm()[k], b.w_perm()[k]) << which << " k=" << k;
      }
      for (int64_t z = 0; z < a.num_zero_rows(); ++z) {
        ASSERT_EQ(a.zero_rows()[z], b.zero_rows()[z]) << which;
      }
    };
    check(fused.gather, gather, "gather");
    check(fused.scatter, scatter, "scatter");
  }
}

TEST_F(KernelsTest, GatBandedBackwardMatchesSinglePass) {
  // GAT's source-major backward attention phase consumes scatter_sched when
  // the heuristic accepts the width; the banded sweep regroups each dp
  // row's additions by destination band, so it must match the single-pass
  // walk to float rounding.
  const Graph g = SkewedGraph(2048, 24576, 457);
  const Chunk chunk = FullChunk(g);
  const ChunkSchedules scheds =
      ChunkSchedules::Build(chunk, ForcedBandedParams());
  ASSERT_TRUE(scheds.scatter.ShouldUse(32, /*accumulate=*/true));
  const LocalGraph plain = LocalGraph::FromChunk(chunk);
  const LocalGraph banded = LocalGraph::FromChunk(chunk, &scheds);
  const Tensor src = Tensor::Gaussian(plain.num_src, 24, 0.5f, 461);

  const auto run = [&](const LocalGraph& lg) {
    GatLayer layer(24, 32, /*relu=*/true, /*seed=*/463);
    Tensor dst;
    std::unique_ptr<LayerCtx> ctx;
    EXPECT_TRUE(layer.ForwardStore(lg, src, &dst, &ctx).ok());
    layer.ZeroGrads();
    Tensor d_src(lg.num_src, 24);
    EXPECT_TRUE(layer.BackwardStored(lg, *ctx, src, dst, &d_src).ok());
    std::vector<Tensor> out;
    out.push_back(std::move(d_src));
    for (Tensor* t : layer.grads()) out.push_back(t->Clone());
    return out;
  };
  const std::vector<Tensor> ref = run(plain);
  const std::vector<Tensor> bnd = run(banded);
  ASSERT_EQ(ref.size(), bnd.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_LE(Tensor::MaxAbsDiff(ref[i], bnd[i]), kTol) << "tensor " << i;
  }
}

// ---- End-to-end layer equivalence ------------------------------------------

template <typename LayerT>
void CheckLayerBackendEquivalence(const Graph& g, int in_dim, int out_dim) {
  const Chunk chunk = FullChunk(g);
  const LocalGraph lg = LocalGraph::FromChunk(chunk);
  const Tensor src = Tensor::Gaussian(lg.num_src, in_dim, 0.5f, 113);

  struct Run {
    Tensor dst;
    Tensor d_src;
    std::vector<Tensor> grads;
  };
  const auto run = [&](kernels::Backend backend) {
    kernels::SetBackend(backend);
    LayerT layer(in_dim, out_dim, /*relu=*/true, /*seed=*/127);
    Run r;
    std::unique_ptr<LayerCtx> ctx;
    EXPECT_TRUE(layer.ForwardStore(lg, src, &r.dst, &ctx).ok());
    layer.ZeroGrads();
    r.d_src = Tensor(lg.num_src, in_dim);
    EXPECT_TRUE(layer.BackwardStored(lg, *ctx, src, r.dst, &r.d_src).ok());
    // ForwardStore may hand out a view of ctx storage; detach before ctx
    // dies at the end of this lambda.
    r.dst = r.dst.Clone();
    for (Tensor* t : layer.grads()) r.grads.push_back(t->Clone());
    return r;
  };

  const Run ref = run(kernels::Backend::kReference);
  const Run blk = run(kernels::Backend::kBlocked);
  EXPECT_LE(Tensor::MaxAbsDiff(ref.dst, blk.dst), kTol);
  EXPECT_LE(Tensor::MaxAbsDiff(ref.d_src, blk.d_src), kTol);
  ASSERT_EQ(ref.grads.size(), blk.grads.size());
  for (size_t i = 0; i < ref.grads.size(); ++i) {
    EXPECT_LE(Tensor::MaxAbsDiff(ref.grads[i], blk.grads[i]), kTol)
        << "grad " << i;
  }
}

TEST_F(KernelsTest, LayersMatchAcrossBackends) {
  const Graph g = SkewedGraph(300, 2400, 131);
  CheckLayerBackendEquivalence<GcnLayer>(g, 24, 17);
  CheckLayerBackendEquivalence<SageLayer>(g, 24, 17);
  CheckLayerBackendEquivalence<GinLayer>(g, 24, 17);
  CheckLayerBackendEquivalence<GgnnLayer>(g, 24, 17);
  CheckLayerBackendEquivalence<GatLayer>(g, 24, 17);
}

}  // namespace
}  // namespace hongtu
