// Tests for the mixed-precision communication codec (kernels/codec.h):
// round-trip error bounds (bf16 <= 2^-8 relative; fp16 denormal/overflow
// edge cases), round-to-nearest-even ties, bit-identical blocked-vs-
// reference backends, the convert-accumulate kernels' fp32 contract, and
// the executor's convert-on-copy fetch/flush paths against an exact
// quantized reference per owner group.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "hongtu/comm/dedup_plan.h"
#include "hongtu/comm/executor.h"
#include "hongtu/comm/reorganize.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/kernels/codec.h"

namespace hongtu {
namespace {

using kernels::Backend;
using kernels::CommPrecision;

TEST(Codec, NamesAndElemBytes) {
  EXPECT_STREQ(kernels::CommPrecisionName(CommPrecision::kFp32), "fp32");
  EXPECT_STREQ(kernels::CommPrecisionName(CommPrecision::kBf16), "bf16");
  EXPECT_STREQ(kernels::CommPrecisionName(CommPrecision::kFp16), "fp16");
  EXPECT_EQ(kernels::CommElemBytes(CommPrecision::kFp32), 4);
  EXPECT_EQ(kernels::CommElemBytes(CommPrecision::kBf16), 2);
  EXPECT_EQ(kernels::CommElemBytes(CommPrecision::kFp16), 2);
}

TEST(Codec, Bf16RoundTripRelativeErrorBound) {
  // bf16 keeps 8 significand bits: relative round-trip error <= 2^-8 for
  // every normal value, across the full fp32 exponent range.
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const float mag = std::ldexp(1.0f + rng.NextFloat(0, 1),
                                 static_cast<int>(rng.NextInt(60)) - 30);
    const float v = rng.NextInt(2) ? mag : -mag;
    const float back = kernels::Bf16ToFp32(kernels::Fp32ToBf16(v));
    EXPECT_LE(std::fabs(back - v), std::ldexp(std::fabs(v), -8)) << v;
  }
  // Values with <= 8 significand bits survive exactly.
  for (const float v : {0.0f, -0.0f, 1.0f, -2.0f, 0.5f, 384.0f, 0x1.8p100f}) {
    EXPECT_EQ(kernels::Bf16ToFp32(kernels::Fp32ToBf16(v)), v);
  }
}

TEST(Codec, Bf16RoundsToNearestEven) {
  // The bf16 ulp at 1.0 is 2^-7; 1 + 2^-8 is exactly halfway and must round
  // down to the even neighbor, while 1 + 3*2^-8 rounds up to 1 + 2^-6.
  EXPECT_EQ(kernels::Bf16ToFp32(kernels::Fp32ToBf16(1.0f + 0x1p-8f)), 1.0f);
  EXPECT_EQ(kernels::Bf16ToFp32(kernels::Fp32ToBf16(1.0f + 3 * 0x1p-8f)),
            1.0f + 0x1p-6f);
  // Infinities survive; NaN stays NaN (the rounding carry must not promote
  // it to infinity).
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(kernels::Bf16ToFp32(kernels::Fp32ToBf16(inf)), inf);
  EXPECT_EQ(kernels::Bf16ToFp32(kernels::Fp32ToBf16(-inf)), -inf);
  EXPECT_TRUE(std::isnan(
      kernels::Bf16ToFp32(kernels::Fp32ToBf16(std::nanf("")))));
}

TEST(Codec, Fp16RoundTripNormalsAndTies) {
  // Exactly representable values survive, including the extremes of the
  // normal range.
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, 65504.0f, -65504.0f,
                        0x1p-14f, 1024.0f, 0.0999755859375f}) {
    EXPECT_EQ(kernels::Fp16ToFp32(kernels::Fp32ToFp16(v)), v) << v;
  }
  // Relative error <= 2^-11 across the normal fp16 range.
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    const float mag = std::ldexp(1.0f + rng.NextFloat(0, 1),
                                 static_cast<int>(rng.NextInt(29)) - 14);
    const float v = rng.NextInt(2) ? mag : -mag;
    const float back = kernels::Fp16ToFp32(kernels::Fp32ToFp16(v));
    EXPECT_LE(std::fabs(back - v), std::ldexp(std::fabs(v), -11)) << v;
  }
  // RNE tie at 1 + 2^-11 (halfway to the next ulp): down to even.
  EXPECT_EQ(kernels::Fp16ToFp32(kernels::Fp32ToFp16(1.0f + 0x1p-11f)), 1.0f);
  EXPECT_EQ(kernels::Fp16ToFp32(kernels::Fp32ToFp16(1.0f + 3 * 0x1p-11f)),
            1.0f + 0x1p-9f);
}

TEST(Codec, Fp16OverflowAndInfinity) {
  const float inf = std::numeric_limits<float>::infinity();
  // 65504 is the largest finite half; values up to the rounding boundary
  // 65520 still round down to it, everything above overflows to infinity.
  EXPECT_EQ(kernels::Fp16ToFp32(kernels::Fp32ToFp16(65519.0f)), 65504.0f);
  EXPECT_EQ(kernels::Fp16ToFp32(kernels::Fp32ToFp16(65520.0f)), inf);
  EXPECT_EQ(kernels::Fp16ToFp32(kernels::Fp32ToFp16(1e6f)), inf);
  EXPECT_EQ(kernels::Fp16ToFp32(kernels::Fp32ToFp16(-3.4e38f)), -inf);
  EXPECT_EQ(kernels::Fp16ToFp32(kernels::Fp32ToFp16(inf)), inf);
  EXPECT_TRUE(std::isnan(
      kernels::Fp16ToFp32(kernels::Fp32ToFp16(std::nanf("")))));
}

TEST(Codec, Fp16DenormalsAndUnderflow) {
  // Gradual underflow: subnormal halves are multiples of 2^-24 and the
  // round trip stays within half an ulp (2^-25) absolute.
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const float mag =
        rng.NextFloat(0, 1) * 0x1p-14f;  // below the normal threshold
    const float v = rng.NextInt(2) ? mag : -mag;
    const float back = kernels::Fp16ToFp32(kernels::Fp32ToFp16(v));
    EXPECT_LE(std::fabs(back - v), 0x1p-25f) << v;
    EXPECT_EQ(std::fabs(std::fmod(back, 0x1p-24f)), 0.0f) << v;
  }
  // The smallest subnormal survives exactly; half of it (the tie) rounds to
  // even zero; anything strictly between rounds to the nearer neighbor.
  EXPECT_EQ(kernels::Fp16ToFp32(kernels::Fp32ToFp16(0x1p-24f)), 0x1p-24f);
  EXPECT_EQ(kernels::Fp16ToFp32(kernels::Fp32ToFp16(0x1p-25f)), 0.0f);
  EXPECT_EQ(kernels::Fp16ToFp32(kernels::Fp32ToFp16(1.5f * 0x1p-25f)),
            0x1p-24f);
  // Signed zero is preserved through the subnormal path.
  EXPECT_TRUE(std::signbit(kernels::Fp16ToFp32(kernels::Fp32ToFp16(-0.0f))));
  EXPECT_TRUE(std::signbit(kernels::Fp16ToFp32(kernels::Fp32ToFp16(-0x1p-26f))));
}

TEST(Codec, RoundTripIsIdempotent) {
  // Decode(Encode(x)) must be a fixed point: a transition row that crosses
  // the wire repeatedly (slot reuse) may not drift.
  Rng rng(19);
  for (const CommPrecision p : {CommPrecision::kBf16, CommPrecision::kFp16}) {
    for (int i = 0; i < 5000; ++i) {
      const float v = std::ldexp(rng.NextFloat(-2, 2),
                                 static_cast<int>(rng.NextInt(30)) - 15);
      const uint16_t q = p == CommPrecision::kBf16 ? kernels::Fp32ToBf16(v)
                                                   : kernels::Fp32ToFp16(v);
      const float once = p == CommPrecision::kBf16 ? kernels::Bf16ToFp32(q)
                                                   : kernels::Fp16ToFp32(q);
      const uint16_t q2 = p == CommPrecision::kBf16
                              ? kernels::Fp32ToBf16(once)
                              : kernels::Fp32ToFp16(once);
      EXPECT_EQ(q, q2) << v;
    }
  }
}

/// A buffer mixing magnitudes, denormal-bound values and specials.
std::vector<float> MixedBuffer(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    switch (rng.NextInt(8)) {
      case 0: v[i] = rng.NextFloat(-1e-20f, 1e-20f); break;
      case 1: v[i] = rng.NextFloat(-1e30f, 1e30f); break;
      case 2: v[i] = rng.NextFloat(-7e4f, 7e4f); break;
      case 3: v[i] = 0.0f; break;
      default: v[i] = rng.NextFloat(-2, 2); break;
    }
  }
  return v;
}

TEST(Codec, BackendsAreBitIdentical) {
  // The blocked (`omp simd`) loops must produce exactly the reference
  // backend's bits for every kernel and precision.
  const int64_t n = 4099;  // odd length exercises any vector tail
  const std::vector<float> src = MixedBuffer(n, 23);
  for (const CommPrecision p : {CommPrecision::kBf16, CommPrecision::kFp16}) {
    std::vector<uint16_t> enc_ref(n), enc_blk(n);
    kernels::EncodeRows(Backend::kReference, p, src.data(), n, enc_ref.data());
    kernels::EncodeRows(Backend::kBlocked, p, src.data(), n, enc_blk.data());
    EXPECT_EQ(std::memcmp(enc_ref.data(), enc_blk.data(),
                          enc_ref.size() * sizeof(uint16_t)), 0);

    std::vector<float> dec_ref(n), dec_blk(n);
    kernels::DecodeRows(Backend::kReference, p, enc_ref.data(), n,
                        dec_ref.data());
    kernels::DecodeRows(Backend::kBlocked, p, enc_ref.data(), n,
                        dec_blk.data());
    EXPECT_EQ(std::memcmp(dec_ref.data(), dec_blk.data(),
                          dec_ref.size() * sizeof(float)), 0);

    std::vector<float> acc_ref(n, 0.25f), acc_blk(n, 0.25f);
    kernels::DecodeAccumRows(Backend::kReference, p, enc_ref.data(), n,
                             acc_ref.data());
    kernels::DecodeAccumRows(Backend::kBlocked, p, enc_ref.data(), n,
                             acc_blk.data());
    EXPECT_EQ(std::memcmp(acc_ref.data(), acc_blk.data(),
                          acc_ref.size() * sizeof(float)), 0);

    std::vector<float> qc_ref(n), qc_blk(n);
    kernels::QuantizeCopyRows(Backend::kReference, p, src.data(), n,
                              qc_ref.data());
    kernels::QuantizeCopyRows(Backend::kBlocked, p, src.data(), n,
                              qc_blk.data());
    EXPECT_EQ(std::memcmp(qc_ref.data(), qc_blk.data(),
                          qc_ref.size() * sizeof(float)), 0);
  }
}

TEST(Codec, AccumulateKernelsKeepFp32Contract) {
  const int64_t n = 513;
  const std::vector<float> src = MixedBuffer(n, 29);
  for (const CommPrecision p : {CommPrecision::kBf16, CommPrecision::kFp16}) {
    std::vector<uint16_t> enc(n);
    kernels::EncodeRows(Backend::kBlocked, p, src.data(), n, enc.data());
    // DecodeAccum == acc + Decode(enc), element-exact in fp32.
    std::vector<float> acc(n, 3.0f), dec(n);
    kernels::DecodeRows(Backend::kBlocked, p, enc.data(), n, dec.data());
    kernels::DecodeAccumRows(Backend::kBlocked, p, enc.data(), n, acc.data());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(acc[i], 3.0f + dec[i]) << i;
    }
    // QuantizeAccum == acc + Decode(Encode(src)), element-exact in fp32.
    std::vector<float> qacc(n, -1.5f);
    kernels::QuantizeAccumRows(Backend::kBlocked, p, src.data(), n,
                               qacc.data());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(qacc[i], -1.5f + dec[i]) << i;
    }
  }
  // kFp32 degrades to plain copy/accumulate.
  std::vector<float> copy(n), acc32(n, 2.0f);
  kernels::QuantizeCopyRows(Backend::kBlocked, CommPrecision::kFp32,
                            src.data(), n, copy.data());
  kernels::QuantizeAccumRows(Backend::kBlocked, CommPrecision::kFp32,
                             src.data(), n, acc32.data());
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(copy[i], src[i]);
    EXPECT_EQ(acc32[i], 2.0f + src[i]);
  }
}

// ---- Executor convert-on-copy paths ----------------------------------------

struct CommSetup {
  Dataset ds;
  TwoLevelPartition tl;
};

CommSetup MakeSetup(const std::string& name, int m, int n) {
  auto dsr = LoadDatasetScaled(name, 0.05);
  EXPECT_TRUE(dsr.ok());
  CommSetup s{dsr.MoveValueUnsafe(), {}};
  auto tlr = BuildTwoLevelPartition(s.ds.graph, m, n);
  EXPECT_TRUE(tlr.ok());
  s.tl = tlr.MoveValueUnsafe();
  EXPECT_TRUE(ReorganizePartition(&s.tl).ok());
  return s;
}

float Quant(CommPrecision p, float v) {
  return p == CommPrecision::kBf16
             ? kernels::Bf16ToFp32(kernels::Fp32ToBf16(v))
             : kernels::Fp16ToFp32(kernels::Fp32ToFp16(v));
}

class ExecutorWireTest : public ::testing::TestWithParam<CommPrecision> {};

TEST_P(ExecutorWireTest, ForwardLoadDeliversQuantizedRowsAtHalvedBytes) {
  const CommPrecision wire = GetParam();
  const int m = 4, n = 4, dim = 9;  // odd dim exercises the packed tail
  CommSetup s = MakeSetup("friendster", m, n);
  auto planr = BuildDedupPlan(s.tl, DedupLevel::kP2PReuse);
  ASSERT_TRUE(planr.ok());
  const DedupPlan& plan = planr.ValueOrDie();

  Tensor host(s.ds.graph.num_vertices(), dim);
  Rng rng(37);
  for (int64_t i = 0; i < host.size(); ++i) {
    host.data()[i] = rng.NextFloat(-3, 3);
  }

  SimPlatform plat(m, 1ll << 30);
  CommExecutor exec(&s.tl, &plan, &plat);
  ASSERT_TRUE(exec.BeginLayer(dim, 1, wire).ok());
  std::vector<Tensor> nbr;
  for (int j = 0; j < n; ++j) {
    ASSERT_TRUE(exec.ForwardLoad(j, host, &nbr).ok());
    for (int i = 0; i < m; ++i) {
      const Chunk& c = s.tl.chunks[i][j];
      ASSERT_EQ(nbr[i].rows(), c.num_neighbors());
      for (int64_t p = 0; p < c.num_neighbors(); ++p) {
        for (int d = 0; d < dim; ++d) {
          // Convert-on-copy: each delivered value is the host value after
          // exactly one wire round trip — per owner group, bit-exactly.
          ASSERT_EQ(nbr[i].at(p, d), Quant(wire, host.at(c.neighbors[p], d)))
              << "neighbor row mismatch";
        }
      }
    }
  }
  // The byte meters must reflect the compressed wire width.
  const int64_t eb = kernels::CommElemBytes(wire);
  EXPECT_EQ(plat.bytes().h2d, plan.volumes.v_ru * dim * eb);
  EXPECT_EQ(plat.bytes().d2d, plan.volumes.v_remote_fetch * dim * eb);
  exec.EndLayer();
}

TEST_P(ExecutorWireTest, BackwardAccumulateMatchesQuantizedFp32Reference) {
  const CommPrecision wire = GetParam();
  const int m = 2, n = 3, dim = 5;
  CommSetup s = MakeSetup("it-2004", m, n);
  auto planr = BuildDedupPlan(s.tl, DedupLevel::kP2PReuse);
  ASSERT_TRUE(planr.ok());
  const DedupPlan& plan = planr.ValueOrDie();

  CommExecutor exec(&s.tl, &plan, nullptr);
  ASSERT_TRUE(exec.BeginLayer(dim, 1, wire).ok());

  const int64_t nv = s.ds.graph.num_vertices();
  Tensor host_grad(nv, dim);
  // Reference model of the accumulation contract: fp32 transition-gradient
  // accumulators; every pushed row quantized once on the push, every
  // flushed row quantized once on the flush. Entries are replayed in the
  // executor's device order, so per-slot addition order matches and the
  // comparison is exact.
  std::vector<Tensor> exp_tg;
  for (int i = 0; i < m; ++i) {
    exp_tg.emplace_back(plan.buffer_slots[i], dim);
  }
  Tensor expect(nv, dim);

  Rng rng(41);
  for (int j = 0; j < n; ++j) {
    std::vector<Tensor> grads(m);
    for (int i = 0; i < m; ++i) {
      const Chunk& c = s.tl.chunks[i][j];
      grads[i] = Tensor(c.num_neighbors(), dim);
      for (int64_t p = 0; p < grads[i].size(); ++p) {
        grads[i].data()[p] = rng.NextFloat(-1, 1);
      }
    }
    for (int i = 0; i < m; ++i) {
      const FetchPlan& f = plan.fetch[i][j];
      for (int o = 0; o < m; ++o) {
        for (int64_t k = f.group_off[o]; k < f.group_off[o + 1]; ++k) {
          for (int d = 0; d < dim; ++d) {
            exp_tg[o].at(f.group_slot[k], d) +=
                Quant(wire, grads[i].at(f.group_pos[k], d));
          }
        }
      }
    }
    for (int i = 0; i < m; ++i) {
      const TransitionStep& step = plan.transition[i][j];
      for (size_t p = 0; p < step.vertices.size(); ++p) {
        if (!step.flush[p]) continue;
        for (int d = 0; d < dim; ++d) {
          float* slot = &exp_tg[i].at(step.slots[p], d);
          expect.at(step.vertices[p], d) += Quant(wire, *slot);
          *slot = 0.0f;
        }
      }
    }
    ASSERT_TRUE(exec.BackwardAccumulate(j, grads, &host_grad).ok());
  }
  EXPECT_EQ(Tensor::MaxAbsDiff(host_grad, expect), 0.0);
  exec.EndLayer();
}

INSTANTIATE_TEST_SUITE_P(Precisions, ExecutorWireTest,
                         ::testing::Values(CommPrecision::kBf16,
                                           CommPrecision::kFp16));

}  // namespace
}  // namespace hongtu
