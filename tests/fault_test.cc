// Fault-tolerance tests: the injection registry's determinism, the retry
// layer, the per-site fault matrix (every armed site either recovers with
// unchanged training results or fails with a clean error), payload
// integrity, and checkpoint/resume equivalence.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hongtu/common/crc32c.h"
#include "hongtu/common/fault.h"
#include "hongtu/engine/checkpoint.h"
#include "hongtu/engine/hongtu_engine.h"
#include "hongtu/engine/trainer.h"

namespace hongtu {
namespace {

constexpr int64_t kBig = 1ll << 40;

// Every test in this file must leave the registry disarmed; a leaked arming
// would poison unrelated tests in the same process.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

Dataset SmallDataset() {
  auto r = LoadDatasetScaled("reddit", 0.2);
  EXPECT_TRUE(r.ok());
  return r.MoveValueUnsafe();
}

HongTuOptions BaseOptions() {
  HongTuOptions o;
  o.num_devices = 4;
  o.chunks_per_partition = 3;
  o.device_capacity_bytes = kBig;
  o.comm_precision = kernels::CommPrecision::kFp32;
  return o;
}

// Trains `epochs` epochs on a fresh engine, returning per-epoch losses.
// Fails the test on any non-OK epoch. `after_create` runs between engine
// creation and the first epoch — fault arming goes there so the injections
// land in the epoch loops (whose recovery is snapshotted into EpochStats)
// rather than in engine setup.
std::vector<double> RunLosses(const Dataset& ds, const HongTuOptions& o,
                              int epochs,
                              fault::RecoveryCounters* recovery = nullptr,
                              const std::function<void()>& after_create = {}) {
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 777);
  auto e = HongTuEngine::Create(&ds, cfg, o);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  if (after_create) after_create();
  std::vector<double> losses;
  for (int k = 0; k < epochs; ++k) {
    auto r = e.ValueOrDie()->TrainEpoch();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return losses;
    losses.push_back(r.ValueOrDie().loss);
    if (recovery != nullptr) {
      for (int i = 0; i < fault::kNumDegradeEvents; ++i) {
        recovery->counts[i] += r.ValueOrDie().recovery.counts[i];
      }
    }
  }
  return losses;
}

// ---- Registry. -------------------------------------------------------------

TEST_F(FaultTest, DisarmedByDefaultAndPokeIsOk) {
  // CI runs this suite with HONGTU_FAULT_SPEC set; the registry is then
  // armed *by request*, which is not what this test is about.
  if (std::getenv("HONGTU_FAULT_SPEC") != nullptr) {
    GTEST_SKIP() << "HONGTU_FAULT_SPEC is set; default-disarmed does not apply";
  }
  EXPECT_FALSE(fault::Armed());
  EXPECT_TRUE(fault::Poke(fault::Site::kCommFetch).ok());
  EXPECT_EQ(fault::Check(fault::Site::kCommFetch), fault::Kind::kNone);
}

TEST_F(FaultTest, DecisionStreamIsDeterministic) {
  fault::SiteSpec spec;
  spec.kind = fault::Kind::kTransient;
  spec.prob = 0.5;
  spec.seed = 7;
  const auto draw = [&]() {
    EXPECT_TRUE(fault::Arm(fault::Site::kCommFetch, spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(fault::Check(fault::Site::kCommFetch) !=
                      fault::Kind::kNone);
    }
    fault::DisarmAll();
    return fired;
  };
  std::vector<bool> a, b;
  { SCOPED_TRACE("first"); a = draw(); }
  { SCOPED_TRACE("second"); b = draw(); }
  EXPECT_EQ(a, b);
  // prob 0.5 over 64 draws: both outcomes occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
  // A different seed gives a different stream.
  spec.seed = 8;
  EXPECT_NE(draw(), a);
}

TEST_F(FaultTest, SkipAndMaxCountWindowTheFires) {
  fault::SiteSpec spec;
  spec.kind = fault::Kind::kPermanent;
  spec.prob = 1.0;
  spec.seed = 1;
  spec.skip = 3;
  spec.max_count = 2;
  ASSERT_TRUE(fault::Arm(fault::Site::kDeviceH2D, spec).ok());
  std::vector<fault::Kind> got;
  for (int i = 0; i < 8; ++i) got.push_back(fault::Check(fault::Site::kDeviceH2D));
  const fault::Kind none = fault::Kind::kNone;
  const fault::Kind perm = fault::Kind::kPermanent;
  EXPECT_EQ(got, (std::vector<fault::Kind>{none, none, none, perm, perm, none,
                                           none, none}));
  const fault::SiteStats st = fault::StatsFor(fault::Site::kDeviceH2D);
  EXPECT_EQ(st.checks, 8);
  EXPECT_EQ(st.fired, 2);
}

TEST_F(FaultTest, SpecStringParsesAndRejects) {
  ASSERT_TRUE(fault::ArmSpecString("comm.fetch:transient:0.25:42").ok());
  EXPECT_TRUE(fault::Armed());
  fault::DisarmAll();
  EXPECT_FALSE(fault::Armed());
  // Multi-clause with max_count and skip.
  ASSERT_TRUE(
      fault::ArmSpecString("pool.alloc:corrupt:1:0:5;ckpt.write:kill:1:0:1:12")
          .ok());
  fault::DisarmAll();
  EXPECT_FALSE(fault::ArmSpecString("bogus.site:transient:1:0").ok());
  EXPECT_FALSE(fault::ArmSpecString("comm.fetch:bogus:1:0").ok());
  EXPECT_FALSE(fault::ArmSpecString("comm.fetch:transient:2.5:0").ok());
  EXPECT_FALSE(fault::ArmSpecString("comm.fetch:transient").ok());
}

TEST_F(FaultTest, PokeMaterializesStatuses) {
  fault::SiteSpec spec;
  spec.prob = 1.0;
  spec.kind = fault::Kind::kTransient;
  ASSERT_TRUE(fault::Arm(fault::Site::kGraphIo, spec).ok());
  Status st = fault::Poke(fault::Site::kGraphIo);
  EXPECT_TRUE(st.IsTransient());
  spec.kind = fault::Kind::kPermanent;
  ASSERT_TRUE(fault::Arm(fault::Site::kGraphIo, spec).ok());
  st = fault::Poke(fault::Site::kGraphIo);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(st.IsTransient());
  // Corrupt at a payload-less site materializes as DataLoss (transient: a
  // reload heals it).
  spec.kind = fault::Kind::kCorrupt;
  ASSERT_TRUE(fault::Arm(fault::Site::kGraphIo, spec).ok());
  st = fault::Poke(fault::Site::kGraphIo);
  EXPECT_TRUE(st.IsDataLoss());
}

TEST_F(FaultTest, BackoffIsDeterministicAndCapped) {
  fault::RetryPolicy p;
  const double a1 = fault::internal::BackoffSleep(p, 1);
  const double a2 = fault::internal::BackoffSleep(p, 1);
  EXPECT_EQ(a1, a2);
  for (int attempt = 1; attempt < 12; ++attempt) {
    const double s = fault::internal::BackoffSleep(p, attempt);
    EXPECT_GE(s, 0.5 * p.base_backoff_s);
    EXPECT_LE(s, p.max_backoff_s);
  }
}

// ---- Retry layer. ----------------------------------------------------------

TEST_F(FaultTest, RetryRecoversAndCounts) {
  fault::DegradationPolicy policy;
  int calls = 0;
  const Status st = fault::RetryTransient(
      fault::RetryPolicy(), &policy, "unit", [&]() {
        ++calls;
        return calls < 3 ? Status::Unavailable("flaky") : Status::OK();
      });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  const fault::RecoveryCounters rc = policy.SnapshotEpoch();
  EXPECT_EQ(rc[fault::DegradeEvent::kTransientRetry], 1);
  EXPECT_EQ(rc.total(), 1);
}

TEST_F(FaultTest, RetryExhaustsOnPersistentTransient) {
  fault::DegradationPolicy policy;
  int calls = 0;
  fault::RetryPolicy p;
  const Status st = fault::RetryTransient(p, &policy, "unit", [&]() {
    ++calls;
    return Status::Unavailable("always");
  });
  EXPECT_TRUE(st.IsTransient());
  EXPECT_EQ(calls, p.max_attempts);
  EXPECT_EQ(policy.SnapshotEpoch()[fault::DegradeEvent::kRetryExhausted], 1);
}

TEST_F(FaultTest, RetryPropagatesPermanentImmediately) {
  int calls = 0;
  const Status st =
      fault::RetryTransient(fault::RetryPolicy(), nullptr, "unit", [&]() {
        ++calls;
        return Status::Internal("broken");
      });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 1);
}

// ---- Fault matrix: transient faults leave training bitwise unchanged. -----

class TransientSiteTest : public ::testing::TestWithParam<fault::Site> {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

TEST_P(TransientSiteTest, RecoveredEpochMatchesCleanBitwise) {
  const fault::Site site = GetParam();
  Dataset ds = SmallDataset();
  const std::vector<double> clean = RunLosses(ds, BaseOptions(), 3);

  fault::SiteSpec spec;
  spec.kind = fault::Kind::kTransient;
  spec.prob = 1.0;
  spec.seed = 3;
  spec.max_count = 2;  // two injected failures, both absorbed by retries
  fault::RecoveryCounters recovery;
  const std::vector<double> faulted =
      RunLosses(ds, BaseOptions(), 3, &recovery, [&]() {
        ASSERT_TRUE(fault::Arm(site, spec).ok());
      });
  const int64_t fired = fault::StatsFor(site).fired;
  fault::DisarmAll();

  ASSERT_EQ(clean.size(), faulted.size());
  for (size_t k = 0; k < clean.size(); ++k) {
    EXPECT_EQ(clean[k], faulted[k]) << "epoch " << k;  // bitwise, fp32 wire
  }
  // The recovery must actually have fired — a silently-unvisited site would
  // make this test vacuous.
  EXPECT_GT(fired, 0) << fault::SiteName(site);
  EXPECT_GT(recovery.total(), 0) << recovery.ToString();
}

INSTANTIATE_TEST_SUITE_P(AllRetrySites, TransientSiteTest,
                         ::testing::Values(fault::Site::kPoolAlloc,
                                           fault::Site::kCommFetch,
                                           fault::Site::kCommFlush,
                                           fault::Site::kDeviceH2D,
                                           fault::Site::kPipelineStage));

TEST_F(FaultTest, PermanentFaultIsACleanError) {
  Dataset ds = SmallDataset();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 777);
  auto e = HongTuEngine::Create(&ds, cfg, BaseOptions());
  ASSERT_TRUE(e.ok());
  fault::SiteSpec spec;
  spec.kind = fault::Kind::kPermanent;
  spec.prob = 1.0;
  spec.max_count = 1;
  ASSERT_TRUE(fault::Arm(fault::Site::kCommFetch, spec).ok());
  const Status st = e.ValueOrDie()->TrainEpoch().status();
  fault::DisarmAll();
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(st.IsTransient());
  // The engine is still usable: the next (clean) epoch trains.
  EXPECT_TRUE(e.ValueOrDie()->TrainEpoch().ok());
}

TEST_F(FaultTest, CorruptPayloadRepairedByRefetch) {
  Dataset ds = SmallDataset();
  const std::vector<double> clean = RunLosses(ds, BaseOptions(), 3);

  fault::SiteSpec spec;
  spec.kind = fault::Kind::kCorrupt;
  spec.prob = 1.0;
  spec.seed = 5;
  spec.max_count = 3;
  ASSERT_TRUE(fault::Arm(fault::Site::kCommFetch, spec).ok());
  fault::RecoveryCounters recovery;
  const std::vector<double> faulted =
      RunLosses(ds, BaseOptions(), 3, &recovery);
  fault::DisarmAll();

  ASSERT_EQ(clean.size(), faulted.size());
  for (size_t k = 0; k < clean.size(); ++k) {
    EXPECT_EQ(clean[k], faulted[k]) << "epoch " << k;
  }
  EXPECT_GT(recovery[fault::DegradeEvent::kIntegrityRefetch], 0)
      << recovery.ToString();
}

TEST_F(FaultTest, CorruptPayloadFlowsWhenIntegrityDisabled) {
  // With the integrity words off, a corrupted payload is NOT caught — the
  // losses drift from the clean run. This pins down that the CRC check is
  // what provides the protection (and that the corruption injection isn't a
  // no-op).
  Dataset ds = SmallDataset();
  HongTuOptions off = BaseOptions();
  off.wire_integrity = false;
  const std::vector<double> clean = RunLosses(ds, off, 2);

  fault::SiteSpec spec;
  spec.kind = fault::Kind::kCorrupt;
  spec.prob = 1.0;
  spec.seed = 5;
  spec.max_count = 3;
  ASSERT_TRUE(fault::Arm(fault::Site::kCommFetch, spec).ok());
  fault::RecoveryCounters recovery;
  const std::vector<double> faulted = RunLosses(ds, off, 2, &recovery);
  fault::DisarmAll();

  EXPECT_EQ(recovery[fault::DegradeEvent::kIntegrityRefetch], 0);
  ASSERT_EQ(clean.size(), faulted.size());
  bool diverged = false;
  for (size_t k = 0; k < clean.size(); ++k) {
    diverged = diverged || clean[k] != faulted[k];
  }
  EXPECT_TRUE(diverged);
}

TEST_F(FaultTest, TransientFaultsUnderBf16PipelinedStayWithinDrift) {
  // The bf16 wire quantizes refetched rows exactly like first-fetched ones,
  // so recovery under the compressed wire must stay bitwise too — but the
  // assertion is kept at the Bf16DriftTest tolerance to avoid overpinning
  // the replay path's accumulation order.
  Dataset ds = SmallDataset();
  HongTuOptions o = BaseOptions();
  o.comm_precision = kernels::CommPrecision::kBf16;
  const std::vector<double> clean = RunLosses(ds, o, 3);

  fault::SiteSpec spec;
  spec.kind = fault::Kind::kTransient;
  spec.prob = 1.0;
  spec.seed = 11;
  spec.max_count = 3;
  ASSERT_TRUE(fault::Arm(fault::Site::kCommFetch, spec).ok());
  fault::RecoveryCounters recovery;
  const std::vector<double> faulted = RunLosses(ds, o, 3, &recovery);
  fault::DisarmAll();

  ASSERT_EQ(clean.size(), faulted.size());
  for (size_t k = 0; k < clean.size(); ++k) {
    EXPECT_NEAR(faulted[k], clean[k], 0.05 * std::max(1.0, clean[k]))
        << "epoch " << k;
  }
  EXPECT_GT(recovery.total(), 0);
}

// ---- Checkpoint/resume. ----------------------------------------------------

std::string TmpDir() {
  char buf[] = "/tmp/hongtu_fault_test_XXXXXX";
  const char* d = mkdtemp(buf);
  EXPECT_NE(d, nullptr);
  return d;
}

void RemoveTree(const std::string& dir) {
  std::remove((dir + "/ckpt.htck").c_str());
  std::remove((dir + "/ckpt.htck.tmp").c_str());
  std::remove((dir + "/ckpt.prev.htck").c_str());
  rmdir(dir.c_str());
}

Result<std::unique_ptr<HongTuEngine>> MakeEngine(const Dataset& ds) {
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 777);
  return HongTuEngine::Create(&ds, cfg, BaseOptions());
}

void ExpectSameState(HongTuEngine* a, HongTuEngine* b) {
  auto pa = a->model()->AllParams();
  auto pb = b->model()->AllParams();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(Tensor::MaxAbsDiff(*pa[i], *pb[i]), 0.0f) << "param " << i;
    EXPECT_EQ(Tensor::MaxAbsDiff(a->adam()->moment1(static_cast<int>(i)),
                                 b->adam()->moment1(static_cast<int>(i))),
              0.0f)
        << "m1 " << i;
    EXPECT_EQ(Tensor::MaxAbsDiff(a->adam()->moment2(static_cast<int>(i)),
                                 b->adam()->moment2(static_cast<int>(i))),
              0.0f)
        << "m2 " << i;
  }
  EXPECT_EQ(a->adam()->step_count(), b->adam()->step_count());
}

TEST_F(FaultTest, CheckpointRoundTripRestoresBitwise) {
  Dataset ds = SmallDataset();
  const std::string dir = TmpDir();
  const std::string path = dir + "/ckpt.htck";

  auto e = MakeEngine(ds);
  ASSERT_TRUE(e.ok());
  HongTuEngine* engine = e.ValueOrDie().get();
  ASSERT_TRUE(engine->TrainEpoch().ok());
  ASSERT_TRUE(engine->TrainEpoch().ok());
  ASSERT_TRUE(
      SaveCheckpoint(path, engine->model(), *engine->adam(), 2).ok());

  // Continue one epoch past the snapshot, recording the loss...
  auto r3 = engine->TrainEpoch();
  ASSERT_TRUE(r3.ok());

  // ...then restore into a FRESH engine and replay: identical state,
  // identical loss.
  auto e2 = MakeEngine(ds);
  ASSERT_TRUE(e2.ok());
  HongTuEngine* engine2 = e2.ValueOrDie().get();
  int64_t epoch = -1;
  ASSERT_TRUE(
      RestoreCheckpoint(path, engine2->model(), engine2->adam(), &epoch)
          .ok());
  EXPECT_EQ(epoch, 2);
  auto r3b = engine2->TrainEpoch();
  ASSERT_TRUE(r3b.ok());
  EXPECT_EQ(r3.ValueOrDie().loss, r3b.ValueOrDie().loss);
  ExpectSameState(engine, engine2);
  RemoveTree(dir);
}

TEST_F(FaultTest, CorruptPrimaryFallsBackToPrevious) {
  Dataset ds = SmallDataset();
  const std::string dir = TmpDir();
  auto e = MakeEngine(ds);
  ASSERT_TRUE(e.ok());
  HongTuEngine* engine = e.ValueOrDie().get();

  CheckpointManager mgr(dir);
  ASSERT_TRUE(engine->TrainEpoch().ok());
  ASSERT_TRUE(mgr.Save(engine->model(), *engine->adam(), 1).ok());
  ASSERT_TRUE(engine->TrainEpoch().ok());
  ASSERT_TRUE(mgr.Save(engine->model(), *engine->adam(), 2).ok());

  // Flip one byte in the middle of the primary snapshot.
  {
    std::FILE* f = std::fopen(mgr.PrimaryPath().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }

  fault::DegradationPolicy policy;
  CheckpointManager reader(dir, &policy);
  auto e2 = MakeEngine(ds);
  ASSERT_TRUE(e2.ok());
  auto restored =
      reader.Restore(e2.ValueOrDie()->model(), e2.ValueOrDie()->adam());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.ValueOrDie(), 1);  // the epoch-1 previous snapshot
  EXPECT_EQ(
      policy.SnapshotEpoch()[fault::DegradeEvent::kCheckpointFallback], 1);
  RemoveTree(dir);
}

TEST_F(FaultTest, TruncatedPrimaryFallsBackToPrevious) {
  Dataset ds = SmallDataset();
  const std::string dir = TmpDir();
  auto e = MakeEngine(ds);
  ASSERT_TRUE(e.ok());
  HongTuEngine* engine = e.ValueOrDie().get();
  CheckpointManager mgr(dir);
  ASSERT_TRUE(engine->TrainEpoch().ok());
  ASSERT_TRUE(mgr.Save(engine->model(), *engine->adam(), 1).ok());
  ASSERT_TRUE(engine->TrainEpoch().ok());
  ASSERT_TRUE(mgr.Save(engine->model(), *engine->adam(), 2).ok());
  // Truncate the primary mid-file: the ENDS footer is gone, as after a
  // crash mid-write that somehow survived the atomic-rename protocol.
  ASSERT_EQ(truncate(mgr.PrimaryPath().c_str(), 100), 0);

  auto e2 = MakeEngine(ds);
  ASSERT_TRUE(e2.ok());
  auto restored =
      mgr.Restore(e2.ValueOrDie()->model(), e2.ValueOrDie()->adam());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.ValueOrDie(), 1);
  RemoveTree(dir);
}

TEST_F(FaultTest, BothSnapshotsDamagedIsAHardError) {
  Dataset ds = SmallDataset();
  const std::string dir = TmpDir();
  auto e = MakeEngine(ds);
  ASSERT_TRUE(e.ok());
  HongTuEngine* engine = e.ValueOrDie().get();
  CheckpointManager mgr(dir);
  ASSERT_TRUE(engine->TrainEpoch().ok());
  ASSERT_TRUE(mgr.Save(engine->model(), *engine->adam(), 1).ok());
  ASSERT_TRUE(mgr.Save(engine->model(), *engine->adam(), 2).ok());
  ASSERT_EQ(truncate(mgr.PrimaryPath().c_str(), 50), 0);
  ASSERT_EQ(truncate(mgr.PreviousPath().c_str(), 50), 0);
  auto restored = mgr.Restore(engine->model(), engine->adam());
  EXPECT_TRUE(restored.status().IsDataLoss())
      << restored.status().ToString();
  RemoveTree(dir);
}

TEST_F(FaultTest, MissingCheckpointIsNotFound) {
  Dataset ds = SmallDataset();
  const std::string dir = TmpDir();
  auto e = MakeEngine(ds);
  ASSERT_TRUE(e.ok());
  CheckpointManager mgr(dir);
  auto restored =
      mgr.Restore(e.ValueOrDie()->model(), e.ValueOrDie()->adam());
  EXPECT_TRUE(restored.status().IsNotFound());
  RemoveTree(dir);
}

TEST_F(FaultTest, RestoreRejectsShapeMismatch) {
  Dataset ds = SmallDataset();
  const std::string dir = TmpDir();
  const std::string path = dir + "/ckpt.htck";
  auto e = MakeEngine(ds);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(SaveCheckpoint(path, e.ValueOrDie()->model(),
                             *e.ValueOrDie()->adam(), 1)
                  .ok());
  // A model with a different hidden width must refuse the snapshot.
  ModelConfig other = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 24,
                                        ds.num_classes, 2, 777);
  auto e2 = HongTuEngine::Create(&ds, other, BaseOptions());
  ASSERT_TRUE(e2.ok());
  int64_t epoch = -1;
  const Status st = RestoreCheckpoint(path, e2.ValueOrDie()->model(),
                                      e2.ValueOrDie()->adam(), &epoch);
  EXPECT_FALSE(st.ok());
  RemoveTree(dir);
}

TEST_F(FaultTest, InterruptedTrainingResumesBitwiseIdentical) {
  // The in-process version of the kill -9 CI smoke: 2 epochs + snapshot +
  // fresh process image (a new engine) + 2 more epochs must end bitwise
  // equal to 4 uninterrupted epochs.
  Dataset ds = SmallDataset();
  const std::string dir = TmpDir();

  auto straight = MakeEngine(ds);
  ASSERT_TRUE(straight.ok());
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(straight.ValueOrDie()->TrainEpoch().ok());
  }

  auto first = MakeEngine(ds);
  ASSERT_TRUE(first.ok());
  CheckpointManager mgr(dir);
  ASSERT_TRUE(first.ValueOrDie()->TrainEpoch().ok());
  ASSERT_TRUE(first.ValueOrDie()->TrainEpoch().ok());
  ASSERT_TRUE(
      mgr.Save(first.ValueOrDie()->model(), *first.ValueOrDie()->adam(), 2)
          .ok());

  auto resumed = MakeEngine(ds);
  ASSERT_TRUE(resumed.ok());
  auto restored =
      mgr.Restore(resumed.ValueOrDie()->model(), resumed.ValueOrDie()->adam());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.ValueOrDie(), 2);
  for (int k = 0; k < 2; ++k) {
    ASSERT_TRUE(resumed.ValueOrDie()->TrainEpoch().ok());
  }
  ExpectSameState(straight.ValueOrDie().get(), resumed.ValueOrDie().get());
  RemoveTree(dir);
}

TEST_F(FaultTest, TrainerResumeSkipsCompletedEpochs) {
  Dataset ds = SmallDataset();
  const std::string dir = TmpDir();
  TrainerOptions to;
  to.max_epochs = 3;
  to.eval_every = 3;
  to.checkpoint_dir = dir;

  auto e = MakeEngine(ds);
  ASSERT_TRUE(e.ok());
  auto r = TrainToConvergence(e.ValueOrDie().get(), to);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().epochs_run, 3);
  EXPECT_EQ(r.ValueOrDie().resumed_from_epoch, 0);

  // Relaunch on a fresh engine: everything is already done.
  auto e2 = MakeEngine(ds);
  ASSERT_TRUE(e2.ok());
  auto r2 = TrainToConvergence(e2.ValueOrDie().get(), to);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2.ValueOrDie().resumed_from_epoch, 3);
  EXPECT_EQ(r2.ValueOrDie().epochs_run, 0);
  RemoveTree(dir);
}

// ---- CRC32C. ---------------------------------------------------------------

TEST_F(FaultTest, Crc32cKnownAnswersAndChaining) {
  // RFC 3720 test vector: CRC32C of 32 zero bytes.
  unsigned char zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8a9136aau);
  const char* s = "123456789";
  EXPECT_EQ(Crc32c(s, 9), 0xe3069283u);
  // Incremental chaining matches one-shot.
  EXPECT_EQ(Crc32c(s + 4, 5, Crc32c(s, 4)), Crc32c(s, 9));
  // Sensitivity: one flipped bit changes the word.
  char buf[9];
  std::memcpy(buf, s, 9);
  buf[4] ^= 1;
  EXPECT_NE(Crc32c(buf, 9), Crc32c(s, 9));
}

}  // namespace
}  // namespace hongtu
