// Cluster-transport tests: frame round-trips and integrity, partial-read /
// EINTR reassembly, deadlines, the request/response transport with
// reconnect, heartbeat-declared death, the cluster-config codec, and the
// real multi-process cluster backend (2- and 4-worker loopback matrix with
// injected net.* faults and a SIGKILL drill, all required to converge to
// bitwise-identical final weights).
//
// This file has its own main(): the multi-process cases re-exec the test
// binary as cluster workers, so net::MaybeRunClusterWorker() must run
// before gtest does anything (CMakeLists links this target against
// GTest::gtest rather than GTest::gtest_main).

#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hongtu/common/crc32c.h"
#include "hongtu/common/fault.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/net/cluster.h"
#include "hongtu/net/frame.h"
#include "hongtu/net/journal.h"
#include "hongtu/net/socket.h"
#include "hongtu/net/transport.h"
#include "hongtu/net/wire.h"
#include "hongtu/tensor/adam.h"

namespace hongtu {
namespace {

using net::Frame;
using net::MsgType;

// Every test must leave the fault registry disarmed; a leaked arming would
// poison unrelated tests in the same process.
class NetTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) close(a);
    if (b >= 0) close(b);
  }
};

Frame MakeFrame(MsgType type, uint32_t seq, std::string payload) {
  Frame f;
  f.type = type;
  f.src_rank = 3;
  f.seq = seq;
  f.payload = std::move(payload);
  return f;
}

// ---- Framing ---------------------------------------------------------------

TEST_F(NetTest, FrameRoundTrip) {
  SocketPair sp;
  for (size_t n : {size_t(0), size_t(1), size_t(1000), size_t(100000)}) {
    std::string payload(n, 'x');
    for (size_t i = 0; i < n; ++i) payload[i] = static_cast<char>(i * 31);
    ASSERT_TRUE(net::WriteFrame(sp.a, MakeFrame(MsgType::kAck, 7, payload),
                                5.0).ok());
    Frame got;
    bool dropped = true;
    ASSERT_TRUE(net::ReadFrame(sp.b, &got, 5.0, &dropped).ok());
    EXPECT_FALSE(dropped);
    EXPECT_EQ(MsgType::kAck, got.type);
    EXPECT_EQ(3, got.src_rank);
    EXPECT_EQ(7u, got.seq);
    EXPECT_EQ(payload, got.payload);
  }
}

TEST_F(NetTest, ResponseFlagSurvivesTheWire) {
  SocketPair sp;
  Frame f = MakeFrame(MsgType::kError, 9, "boom");
  f.flags = net::kFlagResponse;
  ASSERT_TRUE(net::WriteFrame(sp.a, f, 5.0).ok());
  Frame got;
  bool dropped = false;
  ASSERT_TRUE(net::ReadFrame(sp.b, &got, 5.0, &dropped).ok());
  EXPECT_TRUE(got.is_response());
}

TEST_F(NetTest, CorruptPayloadDetectedAsDataLoss) {
  SocketPair sp;
  // Corrupt after the CRC is computed: the receiver must detect it and keep
  // the stream framed (type/seq stay readable for an in-band error reply).
  fault::SiteSpec spec;
  spec.kind = fault::Kind::kCorrupt;
  spec.prob = 1.0;
  spec.max_count = 1;
  ASSERT_TRUE(fault::Arm(fault::Site::kNetSend, spec).ok());
  ASSERT_TRUE(
      net::WriteFrame(sp.a, MakeFrame(MsgType::kFetchRows, 21, "rowdata"),
                      5.0).ok());
  Frame got;
  bool dropped = false;
  const Status st = net::ReadFrame(sp.b, &got, 5.0, &dropped);
  ASSERT_TRUE(st.IsDataLoss()) << st.ToString();
  EXPECT_EQ(MsgType::kFetchRows, got.type);
  EXPECT_EQ(21u, got.seq);
}

TEST_F(NetTest, DribbledBytesAndEintrReassemble) {
  // Capture one frame's wire bytes.
  std::string wire;
  {
    SocketPair cap;
    ASSERT_TRUE(
        net::WriteFrame(cap.a, MakeFrame(MsgType::kEpoch, 5, "partial-read"),
                        5.0).ok());
    wire.resize(net::kFrameHeaderBytes + 12);
    ASSERT_EQ(static_cast<ssize_t>(wire.size()),
              read(cap.b, &wire[0], wire.size()));
  }
  // Replay them one byte at a time while peppering the reader with SIGUSR1
  // (handler installed without SA_RESTART, so poll/read see real EINTR).
  struct sigaction sa = {};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;
  struct sigaction old;
  ASSERT_EQ(0, sigaction(SIGUSR1, &sa, &old));
  SocketPair sp;
  pthread_t reader = pthread_self();
  std::thread writer([&] {
    for (size_t i = 0; i < wire.size(); ++i) {
      ASSERT_EQ(1, write(sp.a, &wire[i], 1));
      if (i % 3 == 0) pthread_kill(reader, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  Frame got;
  bool dropped = false;
  const Status st = net::ReadFrame(sp.b, &got, 10.0, &dropped);
  writer.join();
  sigaction(SIGUSR1, &old, nullptr);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(MsgType::kEpoch, got.type);
  EXPECT_EQ("partial-read", got.payload);
}

TEST_F(NetTest, ReadDeadlineExpiresAsUnavailable) {
  SocketPair sp;
  Frame got;
  bool dropped = false;
  const double t0 = net::MonotonicSeconds();
  const Status st = net::ReadFrame(sp.b, &got, 0.1, &dropped);
  EXPECT_TRUE(st.code() == StatusCode::kUnavailable) << st.ToString();
  EXPECT_LT(net::MonotonicSeconds() - t0, 2.0);
}

TEST_F(NetTest, PeerCloseIsUnavailable) {
  SocketPair sp;
  close(sp.a);
  sp.a = -1;
  Frame got;
  bool dropped = false;
  EXPECT_TRUE(net::ReadFrame(sp.b, &got, 1.0, &dropped).code() ==
              StatusCode::kUnavailable);
}

// Serializes a raw 40-byte header (little-endian x86 field order) with a
// valid header CRC, for malformed-header tests.
std::string RawHeader(uint32_t magic, uint64_t payload_len) {
  std::string h(net::kFrameHeaderBytes, '\0');
  char* p = &h[0];
  auto put = [&p](const void* v, size_t n) {
    std::memcpy(p, v, n);
    p += n;
  };
  uint16_t type = 12, flags = 0;
  uint32_t src = 0, seq = 1, payload_crc = 0;
  uint64_t term = 0;
  put(&magic, 4);
  put(&type, 2);
  put(&flags, 2);
  put(&src, 4);
  put(&seq, 4);
  put(&term, 8);
  put(&payload_len, 8);
  put(&payload_crc, 4);
  const uint32_t hcrc = Crc32c(h.data(), 36);
  put(&hcrc, 4);
  return h;
}

TEST_F(NetTest, OversizePayloadIsStreamDesync) {
  SocketPair sp;
  const std::string h = RawHeader(net::kFrameMagic, net::kMaxPayloadBytes + 1);
  ASSERT_EQ(static_cast<ssize_t>(h.size()), write(sp.a, h.data(), h.size()));
  Frame got;
  bool dropped = false;
  EXPECT_FALSE(net::ReadFrame(sp.b, &got, 1.0, &dropped).ok());
}

TEST_F(NetTest, BadMagicIsStreamDesync) {
  SocketPair sp;
  const std::string h = RawHeader(0xdeadbeefu, 0);
  ASSERT_EQ(static_cast<ssize_t>(h.size()), write(sp.a, h.data(), h.size()));
  Frame got;
  bool dropped = false;
  EXPECT_FALSE(net::ReadFrame(sp.b, &got, 1.0, &dropped).ok());
}

// ---- Sockets ---------------------------------------------------------------

TEST_F(NetTest, ParseAddr) {
  auto tcp = net::ParseAddr("tcp:127.0.0.1:4817");
  ASSERT_TRUE(tcp.ok());
  EXPECT_FALSE(tcp.ValueOrDie().uds);
  EXPECT_EQ("127.0.0.1", tcp.ValueOrDie().host);
  EXPECT_EQ(4817, tcp.ValueOrDie().port);
  auto uds = net::ParseAddr("uds:/tmp/x.sock");
  ASSERT_TRUE(uds.ok());
  EXPECT_TRUE(uds.ValueOrDie().uds);
  EXPECT_EQ("/tmp/x.sock", uds.ValueOrDie().path);
  EXPECT_FALSE(net::ParseAddr("smoke-signal:hill-7").ok());
}

TEST_F(NetTest, TcpListenConnectAccept) {
  std::string bound;
  auto lr = net::ListenOn("tcp:127.0.0.1:0", &bound);
  ASSERT_TRUE(lr.ok()) << lr.status().ToString();
  EXPECT_NE(bound, "tcp:127.0.0.1:0");  // kernel resolved the port
  auto cr = net::ConnectTo(bound, 2.0);
  ASSERT_TRUE(cr.ok()) << cr.status().ToString();
  auto ar = net::AcceptOn(lr.ValueOrDie(), 2.0);
  ASSERT_TRUE(ar.ok()) << ar.status().ToString();
  close(cr.ValueOrDie());
  close(ar.ValueOrDie());
  close(lr.ValueOrDie());
}

TEST_F(NetTest, ConnectRefusedIsUnavailable) {
  // Port 1 on loopback: nothing listens there in any sane environment.
  auto r = net::ConnectTo("tcp:127.0.0.1:1", 1.0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().code() == StatusCode::kUnavailable) << r.status().ToString();
}

// ---- Transport -------------------------------------------------------------

char TempDirTemplate[] = "/tmp/hongtu-nettest.XXXXXX";

class TransportPair {
 public:
  explicit TransportPair(double peer_timeout_s = 2.0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s", TempDirTemplate);
    dir_ = mkdtemp(buf);
    EXPECT_TRUE(dir_ != nullptr);
    dir_str_ = dir_ ? dir_ : "/tmp";
    net::Transport::Options oa;
    oa.rank = 0;
    oa.peer_timeout_s = peer_timeout_s;
    oa.heartbeat_interval_s = 0.05;
    net::Transport::Options ob = oa;
    ob.rank = 1;
    a = std::make_unique<net::Transport>(oa);
    b = std::make_unique<net::Transport>(ob);
  }
  ~TransportPair() {
    a->Shutdown();
    b->Shutdown();
    rmdir(dir_str_.c_str());
  }
  void Listen() {
    ASSERT_TRUE(a->Listen("uds:" + dir_str_ + "/a.sock").ok());
    ASSERT_TRUE(b->Listen("uds:" + dir_str_ + "/b.sock").ok());
    a->SetPeer(1, b->bound_addr());
    b->SetPeer(0, a->bound_addr());
  }
  std::unique_ptr<net::Transport> a, b;

 private:
  char* dir_ = nullptr;
  std::string dir_str_;
};

TEST_F(NetTest, CallRoundTripAndBigPayload) {
  TransportPair tp;
  tp.b->set_handler([](net::Transport::Request&& req) {
    std::string echoed(req.frame.payload.rbegin(), req.frame.payload.rend());
    req.reply(MsgType::kAck, std::move(echoed));
  });
  tp.Listen();
  auto r = tp.a->Call(1, MsgType::kFetchRows, "abc", 5.0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ("cba", r.ValueOrDie());
  std::string big(1 << 20, 'q');
  auto r2 = tp.a->Call(1, MsgType::kFetchRows, big, 10.0);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(big.size(), r2.ValueOrDie().size());
}

TEST_F(NetTest, ErrorReplyPropagatesStatus) {
  TransportPair tp;
  tp.b->set_handler([](net::Transport::Request&& req) {
    req.reply_error(Status::NotFound("no such step"));
  });
  tp.Listen();
  auto r = tp.a->Call(1, MsgType::kFetchRows, "x", 5.0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();
}

TEST_F(NetTest, CallDeadlineExpiryIsUnavailable) {
  TransportPair tp;
  tp.b->set_handler([](net::Transport::Request&&) {
    // Never reply: the caller's deadline machinery must give up.
  });
  tp.Listen();
  const double t0 = net::MonotonicSeconds();
  auto r = tp.a->Call(1, MsgType::kFetchRows, "x", 0.3);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().code() == StatusCode::kUnavailable) << r.status().ToString();
  EXPECT_LT(net::MonotonicSeconds() - t0, 3.0);
}

TEST_F(NetTest, CallUnknownPeerIsInvalid) {
  TransportPair tp;
  tp.Listen();
  auto r = tp.a->Call(6, MsgType::kAck, "", 0.5);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST_F(NetTest, ReconnectAfterDroppedConnection) {
  TransportPair tp;
  std::atomic<int> served{0};
  tp.b->set_handler([&](net::Transport::Request&& req) {
    served.fetch_add(1);
    req.reply(MsgType::kAck, "ok");
  });
  tp.Listen();
  ASSERT_TRUE(tp.a->Call(1, MsgType::kAck, "", 5.0).ok());
  // Sever the cached connection; the next Call must redial transparently.
  tp.a->DropConnection(1);
  ASSERT_TRUE(tp.a->Call(1, MsgType::kAck, "", 5.0).ok());
  EXPECT_EQ(2, served.load());
}

TEST_F(NetTest, DroppedRequestFrameThenRecovery) {
  TransportPair tp;
  tp.b->set_handler([](net::Transport::Request&& req) {
    req.reply(MsgType::kAck, "ok");
  });
  tp.Listen();
  ASSERT_TRUE(tp.a->Call(1, MsgType::kAck, "", 5.0).ok());
  // The very next frame written anywhere in this process is A's request:
  // inject its loss. The Call sees only silence and must time out as
  // kUnavailable (exactly what RetryTransient retries)...
  fault::SiteSpec spec;
  spec.kind = fault::Kind::kDrop;
  spec.prob = 1.0;
  spec.max_count = 1;
  ASSERT_TRUE(fault::Arm(fault::Site::kNetSend, spec).ok());
  auto r = tp.a->Call(1, MsgType::kAck, "", 0.4);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().code() == StatusCode::kUnavailable) << r.status().ToString();
  // ...and the retry (a fresh Call) succeeds.
  auto r2 = tp.a->Call(1, MsgType::kAck, "", 5.0);
  EXPECT_TRUE(r2.ok()) << r2.status().ToString();
}

TEST_F(NetTest, SilentPeerDeclaredDead) {
  TransportPair tp(/*peer_timeout_s=*/0.3);
  tp.Listen();
  std::mutex mu;
  std::condition_variable cv;
  int dead_rank = -1;
  tp.a->set_death_callback([&](int rank, const std::string&) {
    std::lock_guard<std::mutex> lk(mu);
    dead_rank = rank;
    cv.notify_all();
  });
  tp.a->WatchPeer(1);  // rank 1 never sends anything
  std::unique_lock<std::mutex> lk(mu);
  ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(5),
                          [&] { return dead_rank != -1; }));
  EXPECT_EQ(1, dead_rank);
}

TEST_F(NetTest, HeartbeatKeepsPeerAliveThenEofReportsDeath) {
  TransportPair tp(/*peer_timeout_s=*/0.4);
  tp.Listen();
  std::mutex mu;
  std::condition_variable cv;
  int dead_rank = -1;
  std::string why;
  tp.a->set_death_callback([&](int rank, const std::string& w) {
    std::lock_guard<std::mutex> lk(mu);
    dead_rank = rank;
    why = w;
    cv.notify_all();
  });
  tp.b->StartHeartbeatTo(0);
  // Let a heartbeat land before arming the watch, then survive several
  // timeout periods on heartbeats alone.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  tp.a->WatchPeer(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  {
    std::lock_guard<std::mutex> lk(mu);
    ASSERT_EQ(-1, dead_rank) << why;
  }
  EXPECT_LT(tp.a->SecondsSinceContact(1), 0.4);
  // Kill the peer: its connections EOF and death must be reported (the
  // fast path — well before another timeout's worth of waiting).
  tp.b->Shutdown();
  std::unique_lock<std::mutex> lk(mu);
  ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(5),
                          [&] { return dead_rank != -1; }));
  EXPECT_EQ(1, dead_rank);
}

// ---- Cluster-config codec --------------------------------------------------

TEST_F(NetTest, ClusterConfigRoundTripsBitExact) {
  net::ClusterConfig c;
  c.transport = "tcp";
  c.num_workers = 3;
  c.dataset = "reddit";
  c.dataset_scale = 0.1234567890123;  // must survive bit-exact
  c.dataset_seed = 777;
  c.model_kind = GnnKind::kGat;
  c.model_dims = {602, 32, 41};
  c.model_seed = 2024;
  c.chunks_per_partition = 5;
  c.dedup_level = 1;
  c.reorganize = false;
  c.partition_seed = 99;
  c.wire = kernels::CommPrecision::kBf16;
  c.adam.lr = 0.00317;
  c.runtime_dir = "/tmp/ht.d";
  c.checkpoint_dir = "/tmp/ht.ck";
  c.peer_timeout_s = 0.75;
  c.rpc_deadline_s = 3.5;
  auto dr = net::DecodeClusterConfig(net::EncodeClusterConfig(c));
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  const net::ClusterConfig& d = dr.ValueOrDie();
  EXPECT_EQ(c.transport, d.transport);
  EXPECT_EQ(c.num_workers, d.num_workers);
  EXPECT_EQ(c.dataset, d.dataset);
  EXPECT_EQ(0, std::memcmp(&c.dataset_scale, &d.dataset_scale, 8));
  EXPECT_EQ(c.dataset_seed, d.dataset_seed);
  EXPECT_EQ(c.model_kind, d.model_kind);
  EXPECT_EQ(c.model_dims, d.model_dims);
  EXPECT_EQ(c.model_seed, d.model_seed);
  EXPECT_EQ(c.chunks_per_partition, d.chunks_per_partition);
  EXPECT_EQ(c.dedup_level, d.dedup_level);
  EXPECT_EQ(c.reorganize, d.reorganize);
  EXPECT_EQ(c.partition_seed, d.partition_seed);
  EXPECT_EQ(c.wire, d.wire);
  EXPECT_EQ(0, std::memcmp(&c.adam.lr, &d.adam.lr, sizeof(float)));
  EXPECT_EQ(c.runtime_dir, d.runtime_dir);
  EXPECT_EQ(c.checkpoint_dir, d.checkpoint_dir);
  EXPECT_EQ(0, std::memcmp(&c.peer_timeout_s, &d.peer_timeout_s, 8));
  EXPECT_EQ(0, std::memcmp(&c.rpc_deadline_s, &d.rpc_deadline_s, 8));
}

TEST_F(NetTest, DecodeRejectsBrokenConfigs) {
  net::ClusterConfig c;
  c.dataset = "reddit";
  c.model_dims = {10, 5};
  const std::string good = net::EncodeClusterConfig(c);
  EXPECT_TRUE(net::DecodeClusterConfig(good).ok());
  c.dataset.clear();
  EXPECT_FALSE(net::DecodeClusterConfig(net::EncodeClusterConfig(c)).ok());
  c.dataset = "reddit";
  c.model_dims = {10};
  EXPECT_FALSE(net::DecodeClusterConfig(net::EncodeClusterConfig(c)).ok());
}

// ---- Multi-process cluster matrix ------------------------------------------

uint32_t TensorDigest(const Tensor& t, uint32_t crc) {
  return Crc32c(t.data(), static_cast<size_t>(t.rows() * t.cols()) * 4, crc);
}

uint32_t StateDigest(GnnModel* model, const Adam& adam) {
  uint32_t crc = 0;
  int i = 0;
  for (const Tensor* p : model->AllParams()) {
    crc = TensorDigest(*p, crc);
    crc = TensorDigest(adam.moment1(i), crc);
    crc = TensorDigest(adam.moment2(i), crc);
    ++i;
  }
  const int64_t t = adam.step_count();
  return Crc32c(&t, sizeof(t), crc);
}

struct ClusterOutcome {
  bool ok = false;
  std::string error;
  uint32_t digest = 0;
  std::vector<double> losses;
  int respawns = 0;
  int step_recoveries = 0;
  int adoptions = 0;
  int64_t recovery_events = 0;
};

// One full coordinator lifecycle: spawn, train `epochs`, digest, shutdown.
// `post_start` runs after the workers are up but before the first epoch —
// the hook for coordinator-side fault arming (worker processes never
// inherit the test's fault registry).
ClusterOutcome RunCluster(
    const std::string& transport, int workers, int epochs,
    const std::function<void(net::ClusterConfig*)>& mutate = {},
    const std::function<void()>& post_start = {}) {
  static const Dataset& ds =
      *new Dataset(LoadDatasetScaled("reddit", 0.04).MoveValueUnsafe());
  ClusterOutcome out;
  net::ClusterConfig cc;
  cc.transport = transport;
  cc.num_workers = workers;
  cc.dataset = "reddit";
  cc.dataset_scale = 0.04;
  cc.dataset_seed = ds.load_seed;
  cc.model_kind = GnnKind::kGcn;
  cc.model_dims = {ds.feature_dim(), 16, ds.num_classes};
  cc.model_seed = 2024;
  cc.chunks_per_partition = 2;
  cc.heartbeat_interval_s = 0.05;
  cc.peer_timeout_s = 1.0;
  cc.rpc_deadline_s = 5.0;
  // Bound the watchdog: a wedged run in a test should fail in seconds, not
  // the production default's five minutes.
  cc.epoch_deadline_s = 60.0;
  if (mutate) mutate(&cc);
  auto cr = net::ClusterCoordinator::Start(std::move(cc));
  if (!cr.ok()) {
    out.error = cr.status().ToString();
    return out;
  }
  std::unique_ptr<net::ClusterCoordinator> coord = cr.MoveValueUnsafe();
  if (post_start) post_start();
  for (int e = 0; e < epochs; ++e) {
    auto er = coord->RunEpoch();
    if (!er.ok()) {
      out.error = er.status().ToString();
      return out;
    }
    out.losses.push_back(er.ValueOrDie().loss);
    out.recovery_events += er.ValueOrDie().recovery.total();
  }
  out.digest = StateDigest(coord->model(), *coord->adam());
  out.respawns = coord->respawn_count();
  out.step_recoveries = coord->step_recovery_count();
  out.adoptions = coord->adoption_count();
  out.ok = true;
  return out;
}

TEST_F(NetTest, ClusterUdsTwoWorkersTrainsDeterministically) {
  const ClusterOutcome a = RunCluster("uds", 2, 2);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_EQ(2u, a.losses.size());
  EXPECT_LT(a.losses[1], a.losses[0]);  // it actually learns
  EXPECT_EQ(0, a.respawns);
  const ClusterOutcome b = RunCluster("uds", 2, 2);
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.losses, b.losses);
}

TEST_F(NetTest, ClusterTcpMatchesUds) {
  // The transport is pure plumbing: the trained weights depend only on the
  // training problem (partition, chunks, seeds), never on the wire.
  const ClusterOutcome uds = RunCluster("uds", 2, 2);
  ASSERT_TRUE(uds.ok) << uds.error;
  const ClusterOutcome tcp = RunCluster("tcp", 2, 2);
  ASSERT_TRUE(tcp.ok) << tcp.error;
  EXPECT_EQ(uds.digest, tcp.digest);
  EXPECT_EQ(uds.losses, tcp.losses);
}

TEST_F(NetTest, ClusterFourWorkersSurvivesInjectedNetFaults) {
  const ClusterOutcome clean = RunCluster("uds", 4, 2);
  ASSERT_TRUE(clean.ok) << clean.error;
  // One worker runs with lossy I/O: dropped frames exercise the deadline +
  // RetryTransient path, disconnects the reconnect-and-replay path. The
  // run must still converge to the clean run's exact weights.
  const ClusterOutcome faulty = RunCluster("uds", 4, 2, [](net::ClusterConfig* c) {
    c->fault_rank = 1;
    c->worker_fault_spec =
        "net.send:drop:0.04:11;net.recv:disconnect:0.03:13";
  });
  ASSERT_TRUE(faulty.ok) << faulty.error;
  EXPECT_EQ(clean.digest, faulty.digest);
  EXPECT_EQ(clean.losses, faulty.losses);
}

TEST_F(NetTest, ClusterKillDrillRecoversBitwiseIdentical) {
  const ClusterOutcome clean = RunCluster("uds", 2, 2);
  ASSERT_TRUE(clean.ok) << clean.error;
  // Worker 1 SIGKILLs itself between forward and backward of epoch 0. With
  // the default recover_mode="step" the epoch never aborts: the coordinator
  // respawns the rank mid-epoch, the survivor serves its fetch/push logs,
  // and the replayed rank converges to the exact same weights.
  const ClusterOutcome killed = RunCluster("uds", 2, 2, [](net::ClusterConfig* c) {
    c->kill_rank = 1;
    c->kill_epoch = 0;
  });
  ASSERT_TRUE(killed.ok) << killed.error;
  EXPECT_GE(killed.respawns, 1);
  EXPECT_GE(killed.step_recoveries, 1);
  EXPECT_GE(killed.recovery_events, 2);  // >= peer_death + step_recovery
  EXPECT_EQ(clean.digest, killed.digest);
  EXPECT_EQ(clean.losses, killed.losses);
}

TEST_F(NetTest, ClusterEpochLadderStillRecovers) {
  // The PR 8 rung stays available: recover_mode="epoch" aborts, restores
  // the epoch-head checkpoint, respawns and reruns — same final weights.
  const ClusterOutcome clean = RunCluster("uds", 2, 2);
  ASSERT_TRUE(clean.ok) << clean.error;
  const ClusterOutcome killed = RunCluster("uds", 2, 2, [](net::ClusterConfig* c) {
    c->kill_rank = 1;
    c->kill_epoch = 0;
    c->recover_mode = "epoch";
  });
  ASSERT_TRUE(killed.ok) << killed.error;
  EXPECT_GE(killed.respawns, 1);
  EXPECT_EQ(0, killed.step_recoveries);
  EXPECT_EQ(clean.digest, killed.digest);
  EXPECT_EQ(clean.losses, killed.losses);
}

TEST_F(NetTest, ClusterAdoptModeRecoversBitwiseIdentical) {
  // Survivor takeover: with only one survivor left, r0 must host BOTH
  // partitions for the rest of the epoch (owner-tagged requests route to
  // the adopted RankState, including self-dial to its own process).
  const ClusterOutcome clean = RunCluster("uds", 2, 2);
  ASSERT_TRUE(clean.ok) << clean.error;
  const ClusterOutcome killed = RunCluster("uds", 2, 2, [](net::ClusterConfig* c) {
    c->kill_rank = 1;
    c->kill_epoch = 0;
    c->recover_mode = "adopt";
  });
  ASSERT_TRUE(killed.ok) << killed.error;
  EXPECT_GE(killed.adoptions, 1);
  // The adopted partition lives in r0's process for epoch 0; r1 gets a
  // fresh process again at the next epoch.
  EXPECT_GE(killed.respawns, 1);
  EXPECT_EQ(clean.digest, killed.digest);
  EXPECT_EQ(clean.losses, killed.losses);
}

TEST_F(NetTest, ClusterKillDuringRecoveryDoubleFault) {
  // The hardest drill: r1 dies mid-epoch, and while its recovery is being
  // announced, r2 SIGKILLs itself (triggered by r1's kPeerUpdate). Two
  // overlapping step recoveries in one epoch, still bitwise-identical.
  const ClusterOutcome clean = RunCluster("uds", 4, 2);
  ASSERT_TRUE(clean.ok) << clean.error;
  const ClusterOutcome killed = RunCluster("uds", 4, 2, [](net::ClusterConfig* c) {
    c->kill_rank = 1;
    c->kill_epoch = 0;
    c->kill_on_recover_rank = 2;
  });
  ASSERT_TRUE(killed.ok) << killed.error;
  EXPECT_GE(killed.respawns, 2);
  EXPECT_GE(killed.step_recoveries, 2);
  EXPECT_EQ(clean.digest, killed.digest);
  EXPECT_EQ(clean.losses, killed.losses);
}

TEST_F(NetTest, ClusterCkptFaultsPlusNetFaultsStillConverge) {
  // Checkpoint-write faults on the coordinator (armed after Start so they
  // hit the epoch-end saves) combined with lossy worker I/O: saves retry or
  // degrade (kCheckpointFallback), training itself must be untouched.
  const ClusterOutcome clean = RunCluster("uds", 2, 2);
  ASSERT_TRUE(clean.ok) << clean.error;
  const ClusterOutcome faulty = RunCluster(
      "uds", 2, 2,
      [](net::ClusterConfig* c) {
        c->fault_rank = 1;
        c->worker_fault_spec = "net.send:drop:0.04:17";
      },
      [] {
        fault::SiteSpec spec;
        spec.kind = fault::Kind::kTransient;
        spec.prob = 0.5;
        spec.seed = 99;
        ASSERT_TRUE(fault::Arm(fault::Site::kCkptWrite, spec).ok());
      });
  fault::DisarmAll();
  ASSERT_TRUE(faulty.ok) << faulty.error;
  EXPECT_EQ(clean.digest, faulty.digest);
  EXPECT_EQ(clean.losses, faulty.losses);
}

// ---- Cluster journal + coordinator fault tolerance -------------------------

std::string FreshTempDir() {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s", TempDirTemplate);
  const char* d = mkdtemp(buf);
  EXPECT_NE(nullptr, d);
  return d != nullptr ? std::string(d) : std::string("/tmp");
}

net::JournalRecord MakeRecord(net::JournalRecordType t, std::string payload) {
  net::JournalRecord r;
  r.type = t;
  r.payload = std::move(payload);
  return r;
}

TEST_F(NetTest, JournalAppendReplayAndTornTail) {
  const std::string dir = FreshTempDir();
  const std::string path = dir + "/cluster.journal";
  {
    auto jr = net::ClusterJournal::Open(path);
    ASSERT_TRUE(jr.ok()) << jr.status().ToString();
    auto j = jr.MoveValueUnsafe();
    net::WireWriter t;
    t.U64(7);
    ASSERT_TRUE(j->Append(net::JournalRecordType::kTerm, t.Take()).ok());
    net::WireWriter m;
    m.U32(0);
    m.Str("uds:" + dir + "/w0.sock");
    m.U64(1234);
    ASSERT_TRUE(j->Append(net::JournalRecordType::kMember, m.Take()).ok());
  }
  auto rr = net::ClusterJournal::Replay(path);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  ASSERT_EQ(2u, rr.ValueOrDie().size());

  // Torn tail — truncation into the last record drops exactly that record;
  // the durable prefix replays without an error (a crashed append).
  struct stat st;
  ASSERT_EQ(0, ::stat(path.c_str(), &st));
  ASSERT_EQ(0, ::truncate(path.c_str(), st.st_size - 5));
  auto tr = net::ClusterJournal::Replay(path);
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  EXPECT_EQ(1u, tr.ValueOrDie().size());

  // Mid-record corruption fails the record CRC: replay stops at the damage.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(nullptr, f);
    ASSERT_EQ(0, std::fseek(f, 9, SEEK_SET));  // inside record 1's framing
    std::fputc(0x5a, f);
    std::fclose(f);
  }
  auto cr = net::ClusterJournal::Replay(path);
  ASSERT_TRUE(cr.ok()) << cr.status().ToString();
  EXPECT_EQ(0u, cr.ValueOrDie().size());

  // Header damage is not a torn tail — it is DataLoss (the coordinator then
  // falls back to the checkpoint rung and starts a fresh journal).
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(nullptr, f);
    std::fputc(0x00, f);
    std::fclose(f);
  }
  EXPECT_FALSE(net::ClusterJournal::Replay(path).ok());
  ::unlink(path.c_str());
  ::rmdir(dir.c_str());
}

TEST_F(NetTest, JournalCompactRewritesLiveStateOnly) {
  const std::string dir = FreshTempDir();
  const std::string path = dir + "/cluster.journal";
  auto jr = net::ClusterJournal::Open(path);
  ASSERT_TRUE(jr.ok()) << jr.status().ToString();
  auto j = jr.MoveValueUnsafe();
  for (int i = 0; i < 8; ++i) {
    net::WireWriter t;
    t.U64(static_cast<uint64_t>(i + 1));
    ASSERT_TRUE(j->Append(net::JournalRecordType::kTerm, t.Take()).ok());
  }
  net::WireWriter t;
  t.U64(9);
  net::WireWriter m;
  m.U32(1);
  m.Str("uds:" + dir + "/w1.sock");
  m.U64(4321);
  ASSERT_TRUE(j->Compact({MakeRecord(net::JournalRecordType::kTerm, t.Take()),
                          MakeRecord(net::JournalRecordType::kMember,
                                     m.Take())})
                  .ok());
  auto rr = net::ClusterJournal::Replay(path);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  ASSERT_EQ(2u, rr.ValueOrDie().size());
  // The fd survives the rename swap: appends keep landing in the new file.
  net::WireWriter a;
  a.U64(3);
  a.Str("/ck/epoch3");
  ASSERT_TRUE(j->Append(net::JournalRecordType::kApplied, a.Take()).ok());
  auto r2 = net::ClusterJournal::Replay(path);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(3u, r2.ValueOrDie().size());
  auto js = net::BuildJournalState(r2.ValueOrDie());
  ASSERT_TRUE(js.ok()) << js.status().ToString();
  EXPECT_EQ(9u, js.ValueOrDie().term);
  EXPECT_EQ(3, js.ValueOrDie().epochs_applied);
  j.reset();
  ::unlink(path.c_str());
  ::rmdir(dir.c_str());
}

TEST_F(NetTest, JournalStateDuplicateRegistrationIsIdempotent) {
  std::vector<net::JournalRecord> recs;
  auto member = [](uint32_t rank, const std::string& addr, uint64_t pid) {
    net::WireWriter w;
    w.U32(rank);
    w.Str(addr);
    w.U64(pid);
    return w.Take();
  };
  net::WireWriter t;
  t.U64(3);
  recs.push_back(MakeRecord(net::JournalRecordType::kTerm, t.Take()));
  // Duplicate registration (worker respawned / reconnected): last wins.
  recs.push_back(
      MakeRecord(net::JournalRecordType::kMember, member(0, "uds:a", 100)));
  recs.push_back(
      MakeRecord(net::JournalRecordType::kMember, member(0, "uds:b", 200)));
  net::WireWriter rs;
  rs.U64(9);
  rs.U64(2);
  rs.U32(0);
  recs.push_back(MakeRecord(net::JournalRecordType::kRunStart, rs.Take()));
  // Duplicate done report (resend straddling a coordinator crash): first
  // wins, matching the in-memory `received` dedup.
  auto report = [](uint64_t run, uint32_t rank, const std::string& raw) {
    net::WireWriter w;
    w.U64(run);
    w.U32(rank);
    w.Str(raw);
    return w.Take();
  };
  recs.push_back(
      MakeRecord(net::JournalRecordType::kDoneReport, report(9, 0, "first")));
  recs.push_back(
      MakeRecord(net::JournalRecordType::kDoneReport, report(9, 0, "again")));
  auto jr = net::BuildJournalState(recs);
  ASSERT_TRUE(jr.ok()) << jr.status().ToString();
  const net::JournalState& js = jr.ValueOrDie();
  EXPECT_EQ(3u, js.term);
  ASSERT_EQ(1u, js.members.size());
  EXPECT_EQ("uds:b", js.members.at(0).addr);
  EXPECT_EQ(200u, js.members.at(0).pid);
  EXPECT_EQ(9u, js.run);
  EXPECT_EQ(2, js.run_epoch);
  ASSERT_EQ(1u, js.reports.size());
  EXPECT_EQ("first", js.reports.at(0));

  // Applying the run's epoch settles it: a successor must not adopt.
  net::WireWriter a;
  a.U64(3);
  a.Str("/ck/epoch3");
  recs.push_back(MakeRecord(net::JournalRecordType::kApplied, a.Take()));
  auto jr2 = net::BuildJournalState(recs);
  ASSERT_TRUE(jr2.ok());
  EXPECT_EQ(0u, jr2.ValueOrDie().run);
  EXPECT_TRUE(jr2.ValueOrDie().reports.empty());
  EXPECT_EQ(9u, jr2.ValueOrDie().max_run);
}

TEST_F(NetTest, CoordinatorTermFencingHelpers) {
  // Commands carry coordinator authority and are fenced ...
  EXPECT_TRUE(net::IsCoordinatorCommand(MsgType::kEpoch));
  EXPECT_TRUE(net::IsCoordinatorCommand(MsgType::kEval));
  EXPECT_TRUE(net::IsCoordinatorCommand(MsgType::kShutdown));
  EXPECT_TRUE(net::IsCoordinatorCommand(MsgType::kAbort));
  EXPECT_TRUE(net::IsCoordinatorCommand(MsgType::kPeerUpdate));
  EXPECT_TRUE(net::IsCoordinatorCommand(MsgType::kAdoptPartition));
  EXPECT_TRUE(net::IsCoordinatorCommand(MsgType::kCoordUpdate));
  // ... peer data traffic and worker->coordinator reports are not.
  EXPECT_FALSE(net::IsCoordinatorCommand(MsgType::kHello));
  EXPECT_FALSE(net::IsCoordinatorCommand(MsgType::kEpochDone));
  EXPECT_FALSE(net::IsCoordinatorCommand(MsgType::kFetchRows));
  EXPECT_FALSE(net::IsCoordinatorCommand(MsgType::kGradPush));
  EXPECT_FALSE(net::IsCoordinatorCommand(MsgType::kHeartbeat));

  uint64_t known = 5;
  const Status stale = net::CheckCoordinatorTerm(3, &known);
  EXPECT_EQ(StatusCode::kInvalidArgument, stale.code());  // non-transient
  EXPECT_EQ(5u, known);
  EXPECT_TRUE(net::CheckCoordinatorTerm(5, &known).ok());
  EXPECT_EQ(5u, known);
  EXPECT_TRUE(net::CheckCoordinatorTerm(8, &known).ok());
  EXPECT_EQ(8u, known);  // newer term adopted
}

TEST_F(NetTest, ClusterStaleTermCoordinatorIsFenced) {
  // A "zombie" coordinator: still alive after a successor took over. Its
  // commands carry the old term; every worker must reject them, and the
  // successor's cluster must keep training bitwise-identically.
  const ClusterOutcome clean = RunCluster("uds", 2, 2);
  ASSERT_TRUE(clean.ok) << clean.error;
  const std::string dir = FreshTempDir();
  const auto stable = [&dir](net::ClusterConfig* c) {
    c->runtime_dir = dir;
    c->checkpoint_dir = dir;
    // Keep the zombie from declaring its stolen workers dead while the
    // fencing assertion runs.
    c->peer_timeout_s = 5.0;
    c->max_epoch_attempts = 1;
  };
  static const Dataset& ds =
      *new Dataset(LoadDatasetScaled("reddit", 0.04).MoveValueUnsafe());
  net::ClusterConfig cc;
  cc.transport = "uds";
  cc.num_workers = 2;
  cc.dataset = "reddit";
  cc.dataset_scale = 0.04;
  cc.dataset_seed = ds.load_seed;
  cc.model_kind = GnnKind::kGcn;
  cc.model_dims = {ds.feature_dim(), 16, ds.num_classes};
  cc.model_seed = 2024;
  cc.chunks_per_partition = 2;
  cc.heartbeat_interval_s = 0.05;
  cc.rpc_deadline_s = 5.0;
  cc.epoch_deadline_s = 60.0;
  stable(&cc);
  net::ClusterConfig cc2 = cc;
  auto ar = net::ClusterCoordinator::Start(std::move(cc));
  ASSERT_TRUE(ar.ok()) << ar.status().ToString();
  auto old_coord = ar.MoveValueUnsafe();
  EXPECT_EQ(1u, old_coord->term());
  auto e0 = old_coord->RunEpoch();
  ASSERT_TRUE(e0.ok()) << e0.status().ToString();
  EXPECT_EQ(clean.losses[0], e0.ValueOrDie().loss);

  // Successor re-attaches the live workers under a strictly higher term.
  cc2.resume = true;
  auto br = net::ClusterCoordinator::Start(std::move(cc2));
  ASSERT_TRUE(br.ok()) << br.status().ToString();
  auto succ = br.MoveValueUnsafe();
  EXPECT_GT(succ->term(), old_coord->term());
  EXPECT_TRUE(succ->resumed_from_journal());
  EXPECT_EQ(2, succ->reattach_count());
  EXPECT_EQ(0, succ->respawn_count());

  // The zombie's next command is provably rejected: kInvalidArgument is
  // non-transient, so the failure is fast, not a retry-until-deadline.
  auto ez = old_coord->RunEpoch();
  ASSERT_FALSE(ez.ok());
  EXPECT_NE(std::string::npos, ez.status().ToString().find("fenced"))
      << ez.status().ToString();
  old_coord->Crash();  // abandon: the successor owns the workers now
  old_coord.reset();

  auto e1 = succ->RunEpoch();
  ASSERT_TRUE(e1.ok()) << e1.status().ToString();
  EXPECT_EQ(clean.losses[1], e1.ValueOrDie().loss);
  EXPECT_EQ(clean.digest, StateDigest(succ->model(), *succ->adam()));
  succ->Shutdown();
}

TEST_F(NetTest, ClusterCoordinatorCrashResumeMidEpoch) {
  // Coordinator dies mid-epoch after at least one worker's done report hit
  // the journal. The successor replays the journal, re-attaches the (still
  // computing) workers, adopts the in-flight run with the journaled report
  // prefilled, and finishes WITHOUT an epoch restart — bitwise-identical.
  const ClusterOutcome clean = RunCluster("uds", 2, 2);
  ASSERT_TRUE(clean.ok) << clean.error;
  const std::string dir = FreshTempDir();
  static const Dataset& ds =
      *new Dataset(LoadDatasetScaled("reddit", 0.04).MoveValueUnsafe());
  net::ClusterConfig cc;
  cc.transport = "uds";
  cc.num_workers = 2;
  cc.dataset = "reddit";
  cc.dataset_scale = 0.04;
  cc.dataset_seed = ds.load_seed;
  cc.model_kind = GnnKind::kGcn;
  cc.model_dims = {ds.feature_dim(), 16, ds.num_classes};
  cc.model_seed = 2024;
  cc.chunks_per_partition = 2;
  cc.heartbeat_interval_s = 0.05;
  cc.peer_timeout_s = 1.0;
  cc.rpc_deadline_s = 5.0;
  cc.epoch_deadline_s = 60.0;
  cc.runtime_dir = dir;
  cc.checkpoint_dir = dir;
  net::ClusterConfig cc2 = cc;
  cc.coord_crash_epoch = 0;
  cc.coord_crash_done = 1;
  auto ar = net::ClusterCoordinator::Start(std::move(cc));
  ASSERT_TRUE(ar.ok()) << ar.status().ToString();
  auto doomed = ar.MoveValueUnsafe();
  auto e0 = doomed->RunEpoch();
  ASSERT_FALSE(e0.ok());  // the crash drill always fails the call
  doomed.reset();         // dtor must not touch the successor's workers

  cc2.resume = true;
  auto br = net::ClusterCoordinator::Start(std::move(cc2));
  ASSERT_TRUE(br.ok()) << br.status().ToString();
  auto succ = br.MoveValueUnsafe();
  EXPECT_TRUE(succ->resumed_from_journal());
  EXPECT_EQ(2, succ->reattach_count());
  EXPECT_EQ(0, succ->respawn_count());

  std::vector<double> losses;
  uint32_t digest = 0;
  for (int e = 0; e < 2; ++e) {
    auto er = succ->RunEpoch();
    ASSERT_TRUE(er.ok()) << er.status().ToString();
    losses.push_back(er.ValueOrDie().loss);
    // Step-granular resume: the adopted epoch must never fall back to the
    // epoch-restart rung.
    EXPECT_EQ(0, er.ValueOrDie().recovery[fault::DegradeEvent::kEpochRestart]);
  }
  digest = StateDigest(succ->model(), *succ->adam());
  EXPECT_EQ(clean.losses, losses);
  EXPECT_EQ(clean.digest, digest);
  succ->Shutdown();
}

// ---- Seeded corrupt-frame corpus -------------------------------------------

TEST_F(NetTest, SeededCorruptCorpusClassifiesCleanly) {
  // Fuzz the frame parser with a deterministic corpus: valid frames whose
  // wire bytes are then bit-flipped (header or payload region) or
  // truncated. Every outcome must be a clean classification — in-band
  // payload DataLoss with the header fields intact, a severed-stream error,
  // or EOF-as-Unavailable — never a crash, hang, or silent acceptance.
  uint64_t rng = 0xC0FFEE1234ULL;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  int in_band = 0, severed = 0, truncated = 0;
  for (int iter = 0; iter < 240; ++iter) {
    const size_t psz = static_cast<size_t>(next() % 513);
    Frame f;
    f.type = static_cast<MsgType>(1 + next() % 18);
    f.src_rank = static_cast<int>(next() % 8);
    f.seq = static_cast<uint32_t>(next());
    f.payload.resize(psz);
    for (size_t i = 0; i < psz; ++i) {
      f.payload[i] = static_cast<char>(next());
    }
    std::string wire;
    {
      SocketPair cap;
      ASSERT_TRUE(net::WriteFrame(cap.a, f, 5.0).ok());
      wire.resize(net::kFrameHeaderBytes + psz);
      ASSERT_EQ(static_cast<ssize_t>(wire.size()),
                read(cap.b, &wire[0], wire.size()));
    }
    std::string mut = wire;
    const int mode = psz == 0 && iter % 3 == 1 ? 0 : iter % 3;
    if (mode == 0) {
      // One guaranteed-effective flip inside the CRC-protected header.
      mut[next() % net::kFrameHeaderBytes] ^=
          static_cast<char>(1 + next() % 255);
    } else if (mode == 1) {
      mut[net::kFrameHeaderBytes + next() % psz] ^=
          static_cast<char>(1 + next() % 255);
    } else {
      mut.resize(next() % mut.size());
    }
    SocketPair sp;
    if (!mut.empty()) {
      ASSERT_EQ(static_cast<ssize_t>(mut.size()),
                write(sp.a, mut.data(), mut.size()));
    }
    close(sp.a);
    sp.a = -1;
    Frame got;
    bool dropped = false;
    const Status st = net::ReadFrame(sp.b, &got, 5.0, &dropped);
    ASSERT_FALSE(st.ok()) << "mutated frame parsed clean (iter " << iter
                          << ", mode " << mode << ")";
    if (mode == 1) {
      // Payload damage: header intact, so the error is in-band — type and
      // seq survive for a framed kError reply.
      ASSERT_TRUE(st.IsDataLoss()) << st.ToString();
      EXPECT_EQ(f.type, got.type);
      EXPECT_EQ(f.seq, got.seq);
      ++in_band;
    } else if (mode == 0) {
      // Header damage: the stream is unframeable; any non-OK code is a
      // sever, and the parser must not have blocked on phantom payload.
      ++severed;
    } else {
      ASSERT_EQ(StatusCode::kUnavailable, st.code()) << st.ToString();
      ++truncated;
    }
  }
  // The corpus must have exercised every classification.
  EXPECT_GT(in_band, 0);
  EXPECT_GT(severed, 0);
  EXPECT_GT(truncated, 0);
}

}  // namespace
}  // namespace hongtu

int main(int argc, char** argv) {
  // Must run before gtest: the cluster cases re-exec this binary as worker
  // processes (HONGTU_DIST_ROLE=worker), which never reach the test runner.
  hongtu::net::MaybeRunClusterWorker();
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
