// End-to-end integration tests: real training to accuracy targets, the
// paper's qualitative claims at reproduction scale, and cross-module checks.

#include <gtest/gtest.h>

#include "hongtu/comm/reorganize.h"
#include "hongtu/engine/hongtu_engine.h"
#include "hongtu/engine/inmemory_engine.h"
#include "hongtu/engine/minibatch_engine.h"

namespace hongtu {
namespace {

constexpr int64_t kBig = 1ll << 40;

TEST(Training, FullGraphGcnLearnsRedditLike) {
  // Fig. 8: full-graph GCN converges to high accuracy on the community
  // labeled dataset.
  auto dsr = LoadDatasetScaled("reddit", 0.3);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 32,
                                      ds.num_classes, 2, 2024);
  HongTuOptions o;
  o.num_devices = 4;
  o.chunks_per_partition = 2;
  o.device_capacity_bytes = kBig;
  o.adam.lr = 0.01f;
  auto er = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(er.ok());
  auto& engine = *er.ValueOrDie();
  double first_loss = 0, last_loss = 0;
  for (int epoch = 0; epoch < 30; ++epoch) {
    auto r = engine.TrainEpoch();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (epoch == 0) first_loss = r.ValueOrDie().loss;
    last_loss = r.ValueOrDie().loss;
  }
  EXPECT_LT(last_loss, 0.5 * first_loss);
  auto val = engine.EvaluateAccuracy(SplitRole::kVal);
  ASSERT_TRUE(val.ok());
  EXPECT_GT(val.ValueOrDie(), 0.8);  // SBM community labels are learnable
}

TEST(Training, GatLearnsOnCommunityGraph) {
  auto dsr = LoadDatasetScaled("ogbn-products", 0.15);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGat, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 99);
  HongTuOptions o;
  o.num_devices = 4;
  o.chunks_per_partition = 2;
  o.device_capacity_bytes = kBig;
  auto er = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(er.ok());
  double first = 0, last = 0;
  for (int epoch = 0; epoch < 15; ++epoch) {
    auto r = er.ValueOrDie()->TrainEpoch();
    ASSERT_TRUE(r.ok());
    if (epoch == 0) first = r.ValueOrDie().loss;
    last = r.ValueOrDie().loss;
  }
  EXPECT_LT(last, 0.7 * first);
}

TEST(Training, ChunkCountDoesNotChangeNumerics) {
  // Fig. 10 prerequisite: more chunks trade memory for communication but
  // never change results.
  auto dsr = LoadDatasetScaled("it-2004", 0.1);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 5);
  double ref_loss = -1;
  int64_t prev_peak = INT64_MAX;
  int64_t prev_h2d = 0;
  for (int chunks : {1, 2, 4, 8}) {
    HongTuOptions o;
    o.num_devices = 4;
    o.chunks_per_partition = chunks;
    o.device_capacity_bytes = kBig;
    auto er = HongTuEngine::Create(&ds, cfg, o);
    ASSERT_TRUE(er.ok());
    auto r = er.ValueOrDie()->TrainEpoch();
    ASSERT_TRUE(r.ok());
    if (ref_loss < 0) {
      ref_loss = r.ValueOrDie().loss;
    } else {
      EXPECT_NEAR(r.ValueOrDie().loss, ref_loss, 1e-3);
    }
    // Memory decreases (or stays) as chunks increase; host traffic grows.
    EXPECT_LE(r.ValueOrDie().peak_device_bytes, prev_peak);
    EXPECT_GE(r.ValueOrDie().bytes.h2d, prev_h2d);
    prev_peak = r.ValueOrDie().peak_device_bytes;
    prev_h2d = r.ValueOrDie().bytes.h2d;
  }
}

TEST(Training, MoreDevicesReduceSimTime) {
  // Fig. 11: scaling from 1 to 4 devices shortens the simulated epoch.
  auto dsr = LoadDatasetScaled("friendster", 0.15);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 5);
  double prev = 1e30;
  for (int devices : {1, 2, 4}) {
    HongTuOptions o;
    o.num_devices = devices;
    o.chunks_per_partition = 8 / devices;  // constant total chunk count
    o.device_capacity_bytes = kBig;
    auto er = HongTuEngine::Create(&ds, cfg, o);
    ASSERT_TRUE(er.ok());
    auto r = er.ValueOrDie()->TrainEpoch();
    ASSERT_TRUE(r.ok());
    EXPECT_LT(r.ValueOrDie().SimSeconds(), prev);
    prev = r.ValueOrDie().SimSeconds();
  }
}

TEST(Training, DedupReducesSimTimeOnLargeGraph) {
  // §7.3: deduplicated communication speeds up the epoch (1.3x-3.4x in the
  // paper); at minimum it must never be slower.
  auto dsr = LoadDatasetScaled("ogbn-paper", 0.2);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 5);
  HongTuOptions base;
  base.num_devices = 4;
  base.chunks_per_partition = 8;
  base.device_capacity_bytes = kBig;
  base.dedup = DedupLevel::kNone;
  base.reorganize = false;
  HongTuOptions full = base;
  full.dedup = DedupLevel::kP2PReuse;
  full.reorganize = true;
  auto eb = HongTuEngine::Create(&ds, cfg, base);
  auto ef = HongTuEngine::Create(&ds, cfg, full);
  ASSERT_TRUE(eb.ok() && ef.ok());
  auto rb = eb.ValueOrDie()->TrainEpoch();
  auto rf = ef.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(rb.ok() && rf.ok());
  const double t_base = rb.ValueOrDie().time.h2d + rb.ValueOrDie().time.d2d;
  const double t_full = rf.ValueOrDie().time.h2d + rf.ValueOrDie().time.d2d;
  EXPECT_LT(t_full, t_base);
}

TEST(Training, EvaluateAfterTrainingImproves) {
  auto dsr = LoadDatasetScaled("ogbn-products", 0.15);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kSage, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 5);
  HongTuOptions o;
  o.num_devices = 2;
  o.chunks_per_partition = 2;
  o.device_capacity_bytes = kBig;
  auto er = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(er.ok());
  auto before = er.ValueOrDie()->EvaluateAccuracy(SplitRole::kTest);
  ASSERT_TRUE(before.ok());
  for (int epoch = 0; epoch < 10; ++epoch) {
    ASSERT_TRUE(er.ValueOrDie()->TrainEpoch().ok());
  }
  auto after = er.ValueOrDie()->EvaluateAccuracy(SplitRole::kTest);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after.ValueOrDie(), before.ValueOrDie());
}

TEST(Training, FullGraphBeatsMiniBatchOnRedditLike) {
  // Fig. 8(a): on the reddit-like graph full-graph training reaches at
  // least the accuracy of fanout-10 mini-batch training.
  auto dsr = LoadDatasetScaled("reddit", 0.3);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 32,
                                      ds.num_classes, 2, 2024);

  HongTuOptions fo;
  fo.num_devices = 2;
  fo.chunks_per_partition = 2;
  fo.device_capacity_bytes = kBig;
  auto fg = HongTuEngine::Create(&ds, cfg, fo);
  ASSERT_TRUE(fg.ok());
  MiniBatchOptions mo;
  mo.num_devices = 2;
  mo.device_capacity_bytes = kBig;
  mo.batch_size = 256;
  auto mb = MiniBatchEngine::Create(&ds, cfg, mo);
  ASSERT_TRUE(mb.ok());
  for (int epoch = 0; epoch < 20; ++epoch) {
    ASSERT_TRUE(fg.ValueOrDie()->TrainEpoch().ok());
    ASSERT_TRUE(mb.ValueOrDie()->TrainEpoch().ok());
  }
  auto fa = fg.ValueOrDie()->EvaluateAccuracy(SplitRole::kVal);
  auto ma = mb.ValueOrDie()->EvaluateAccuracy(SplitRole::kVal);
  ASSERT_TRUE(fa.ok() && ma.ok());
  EXPECT_GE(fa.ValueOrDie() + 0.02, ma.ValueOrDie());
}

TEST(Preprocessing, ReorganizationOverheadIsSmall) {
  // Table 9: dedup preprocessing is a small one-off cost.
  auto dsr = LoadDatasetScaled("friendster", 0.2);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 5);
  HongTuOptions o;
  o.num_devices = 4;
  o.chunks_per_partition = 8;
  o.device_capacity_bytes = kBig;
  auto er = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(er.ok());
  EXPECT_GE(er.ValueOrDie()->dedup_preprocess_seconds(), 0.0);
  // One-off preprocessing should cost less than a handful of wall epochs.
  auto r = er.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(r.ok());
  EXPECT_LT(er.ValueOrDie()->dedup_preprocess_seconds(),
            50 * std::max(0.01, r.ValueOrDie().wall_seconds));
}

}  // namespace
}  // namespace hongtu
