// Tests for the GNN layers: finite-difference gradient checks for all four
// models, equivalence of the three backward modes, and loss functions.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "hongtu/gnn/gat_layer.h"
#include "hongtu/gnn/gcn_layer.h"
#include "hongtu/gnn/ggnn_layer.h"
#include "hongtu/gnn/gin_layer.h"
#include "hongtu/gnn/loss.h"
#include "hongtu/gnn/model.h"
#include "hongtu/gnn/sage_layer.h"
#include "hongtu/graph/builder.h"
#include "hongtu/partition/two_level.h"

namespace hongtu {
namespace {

/// A small deterministic random graph with self-loops.
Graph SmallGraph(int64_t n, int64_t extra_edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (int64_t e = 0; e < extra_edges; ++e) {
    const VertexId u = static_cast<VertexId>(rng.NextInt(n));
    const VertexId v = static_cast<VertexId>(rng.NextInt(n));
    if (u != v) edges.emplace_back(u, v);
  }
  GraphBuilder b;
  auto r = b.Build(n, std::move(edges));
  EXPECT_TRUE(r.ok());
  return r.MoveValueUnsafe();
}

Chunk FullChunk(const Graph& g) {
  std::vector<VertexId> all(g.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  return ExtractChunk(g, std::move(all), 0, 0);
}

/// Scalar objective: sum of squares of forward output (well-behaved and
/// sensitive to every output entry). Returns 0.5*||dst_h||^2.
double Objective(Layer* layer, const LocalGraph& lg, const Tensor& src_h) {
  Tensor dst_h;
  EXPECT_TRUE(layer->Forward(lg, src_h, &dst_h, nullptr).ok());
  double s = 0;
  for (int64_t i = 0; i < dst_h.size(); ++i) {
    s += 0.5 * dst_h.data()[i] * dst_h.data()[i];
  }
  return s;
}

/// Checks analytic input & parameter gradients against central differences.
void CheckGradients(Layer* layer, const Graph& g, double tol) {
  const Chunk chunk = FullChunk(g);
  const LocalGraph lg = LocalGraph::FromChunk(chunk);
  Tensor src_h = Tensor::Gaussian(lg.num_src, layer->in_dim(), 0.7f, 321);

  // Analytic gradients with d_dst = dst_h (gradient of 0.5*||out||^2).
  Tensor dst_h;
  std::unique_ptr<LayerCtx> ctx;
  ASSERT_TRUE(layer->ForwardStore(lg, src_h, &dst_h, &ctx).ok());
  layer->ZeroGrads();
  Tensor d_src(lg.num_src, layer->in_dim());
  ASSERT_TRUE(layer->BackwardStored(lg, *ctx, src_h, dst_h, &d_src).ok());

  const double eps = 1e-3;
  // Input gradient at a handful of probe positions.
  Rng rng(99);
  for (int probe = 0; probe < 12; ++probe) {
    const int64_t i = static_cast<int64_t>(rng.NextInt(src_h.size()));
    const float keep = src_h.data()[i];
    src_h.data()[i] = keep + static_cast<float>(eps);
    const double fp = Objective(layer, lg, src_h);
    src_h.data()[i] = keep - static_cast<float>(eps);
    const double fm = Objective(layer, lg, src_h);
    src_h.data()[i] = keep;
    const double numeric = (fp - fm) / (2 * eps);
    EXPECT_NEAR(d_src.data()[i], numeric,
                tol * std::max(1.0, std::fabs(numeric)))
        << layer->name() << " input grad probe " << probe;
  }
  // Parameter gradients.
  auto params = layer->params();
  auto grads = layer->grads();
  for (size_t p = 0; p < params.size(); ++p) {
    for (int probe = 0; probe < 6; ++probe) {
      const int64_t i = static_cast<int64_t>(rng.NextInt(params[p]->size()));
      const float keep = params[p]->data()[i];
      params[p]->data()[i] = keep + static_cast<float>(eps);
      const double fp = Objective(layer, lg, src_h);
      params[p]->data()[i] = keep - static_cast<float>(eps);
      const double fm = Objective(layer, lg, src_h);
      params[p]->data()[i] = keep;
      const double numeric = (fp - fm) / (2 * eps);
      EXPECT_NEAR(grads[p]->data()[i], numeric,
                  tol * std::max(1.0, std::fabs(numeric)))
          << layer->name() << " param " << p << " probe " << probe;
    }
  }
}

TEST(GradCheck, Gcn) {
  Graph g = SmallGraph(24, 100, 1);
  GcnLayer layer(6, 5, /*relu=*/true, 11);
  CheckGradients(&layer, g, 0.02);
}

TEST(GradCheck, GcnNoRelu) {
  Graph g = SmallGraph(24, 100, 2);
  GcnLayer layer(6, 5, /*relu=*/false, 12);
  CheckGradients(&layer, g, 0.02);
}

TEST(GradCheck, Sage) {
  Graph g = SmallGraph(24, 100, 3);
  SageLayer layer(6, 5, /*relu=*/true, 13);
  CheckGradients(&layer, g, 0.02);
}

TEST(GradCheck, Gin) {
  Graph g = SmallGraph(24, 100, 4);
  GinLayer layer(6, 5, /*relu=*/true, 14);
  CheckGradients(&layer, g, 0.02);
}

TEST(GradCheck, Ggnn) {
  Graph g = SmallGraph(20, 80, 7);
  GgnnLayer layer(6, 5, /*relu_unused=*/false, 17);
  CheckGradients(&layer, g, 0.03);
}

TEST(GradCheck, Gat) {
  Graph g = SmallGraph(20, 80, 5);
  GatLayer layer(6, 5, /*relu=*/true, 15);
  CheckGradients(&layer, g, 0.03);
}

TEST(GradCheck, GatNoRelu) {
  Graph g = SmallGraph(20, 80, 6);
  GatLayer layer(5, 4, /*relu=*/false, 16);
  CheckGradients(&layer, g, 0.03);
}

/// The cached backward (Fig. 4c) must produce identical gradients to the
/// stored backward (Fig. 4a) — the paper's accuracy-preservation claim.
template <typename LayerT>
void CheckCachedEqualsStored(int in_dim, int out_dim, uint64_t seed) {
  Graph g = SmallGraph(32, 150, seed);
  const Chunk chunk = FullChunk(g);
  const LocalGraph lg = LocalGraph::FromChunk(chunk);
  LayerT layer(in_dim, out_dim, /*relu=*/true, seed + 7);
  ASSERT_TRUE(layer.cacheable());

  Tensor src_h = Tensor::Gaussian(lg.num_src, in_dim, 0.5f, seed + 9);
  Tensor d_dst = Tensor::Gaussian(lg.num_dst, out_dim, 0.5f, seed + 10);

  // Stored path.
  Tensor dst_h;
  std::unique_ptr<LayerCtx> ctx;
  ASSERT_TRUE(layer.ForwardStore(lg, src_h, &dst_h, &ctx).ok());
  layer.ZeroGrads();
  Tensor d_src_stored(lg.num_src, in_dim);
  ASSERT_TRUE(
      layer.BackwardStored(lg, *ctx, src_h, d_dst, &d_src_stored).ok());
  std::vector<Tensor> grads_stored;
  for (Tensor* t : layer.grads()) grads_stored.push_back(t->Clone());

  // Cached path: forward with aggregate capture, then BackwardCached.
  Tensor dst_h2, agg;
  ASSERT_TRUE(layer.Forward(lg, src_h, &dst_h2, &agg).ok());
  EXPECT_LT(Tensor::MaxAbsDiff(dst_h, dst_h2), 1e-6);
  // dst rows from the "host": with the identity chunk they're src_h rows.
  layer.ZeroGrads();
  Tensor d_src_cached(lg.num_src, in_dim);
  ASSERT_TRUE(
      layer.BackwardCached(lg, agg, src_h, d_dst, &d_src_cached).ok());

  EXPECT_LT(Tensor::MaxAbsDiff(d_src_stored, d_src_cached), 1e-5);
  auto grads_cached = layer.grads();
  for (size_t p = 0; p < grads_cached.size(); ++p) {
    EXPECT_LT(Tensor::MaxAbsDiff(grads_stored[p], *grads_cached[p]), 1e-5)
        << "param " << p;
  }
}

TEST(CachedBackward, GcnMatchesStored) {
  CheckCachedEqualsStored<GcnLayer>(6, 4, 21);
}
TEST(CachedBackward, SageMatchesStored) {
  CheckCachedEqualsStored<SageLayer>(6, 4, 22);
}
TEST(CachedBackward, GinMatchesStored) {
  CheckCachedEqualsStored<GinLayer>(6, 4, 23);
}
TEST(CachedBackward, GgnnMatchesStored) {
  CheckCachedEqualsStored<GgnnLayer>(6, 4, 24);
}

TEST(CachedBackward, GatReportsNotImplemented) {
  Graph g = SmallGraph(16, 60, 30);
  const Chunk chunk = FullChunk(g);
  const LocalGraph lg = LocalGraph::FromChunk(chunk);
  GatLayer layer(4, 3, true, 31);
  EXPECT_FALSE(layer.cacheable());
  Tensor agg, dst_h, d_dst(lg.num_dst, 3), d_src(lg.num_src, 4);
  EXPECT_EQ(layer.BackwardCached(lg, agg, dst_h, d_dst, &d_src).code(),
            StatusCode::kNotImplemented);
}

TEST(BackwardRecompute, MatchesStoredForAllKinds) {
  Graph g = SmallGraph(28, 120, 40);
  const Chunk chunk = FullChunk(g);
  const LocalGraph lg = LocalGraph::FromChunk(chunk);
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<GcnLayer>(5, 4, true, 41));
  layers.push_back(std::make_unique<SageLayer>(5, 4, true, 42));
  layers.push_back(std::make_unique<GinLayer>(5, 4, true, 43));
  layers.push_back(std::make_unique<GatLayer>(5, 4, true, 44));
  layers.push_back(std::make_unique<GgnnLayer>(5, 4, false, 45));
  for (auto& layer : layers) {
    Tensor src_h = Tensor::Gaussian(lg.num_src, 5, 0.5f, 45);
    Tensor d_dst = Tensor::Gaussian(lg.num_dst, 4, 0.5f, 46);
    Tensor dst_h;
    std::unique_ptr<LayerCtx> ctx;
    ASSERT_TRUE(layer->ForwardStore(lg, src_h, &dst_h, &ctx).ok());
    layer->ZeroGrads();
    Tensor a(lg.num_src, 5);
    ASSERT_TRUE(layer->BackwardStored(lg, *ctx, src_h, d_dst, &a).ok());
    std::vector<Tensor> ga;
    for (Tensor* t : layer->grads()) ga.push_back(t->Clone());
    layer->ZeroGrads();
    Tensor b(lg.num_src, 5);
    ASSERT_TRUE(layer->BackwardRecompute(lg, src_h, d_dst, &b).ok());
    EXPECT_LT(Tensor::MaxAbsDiff(a, b), 1e-6) << layer->name();
    auto gb = layer->grads();
    for (size_t p = 0; p < gb.size(); ++p) {
      EXPECT_LT(Tensor::MaxAbsDiff(ga[p], *gb[p]), 1e-6) << layer->name();
    }
  }
}

TEST(Gat, AttentionWeightsFormDistribution) {
  Graph g = SmallGraph(16, 60, 50);
  const Chunk chunk = FullChunk(g);
  const LocalGraph lg = LocalGraph::FromChunk(chunk);
  GatLayer layer(4, 3, true, 51);
  Tensor src_h = Tensor::Gaussian(lg.num_src, 4, 1.0f, 52);
  // Attention weights are internal; verify through homogeneity: if all
  // neighbors have identical representations, the output equals W h (alpha
  // sums to 1 regardless of the attention logits).
  Tensor uniform(lg.num_src, 4);
  for (int64_t s = 0; s < lg.num_src; ++s) {
    for (int64_t c = 0; c < 4; ++c) uniform.at(s, c) = 0.3f * (c + 1);
  }
  Tensor out;
  ASSERT_TRUE(layer.Forward(lg, uniform, &out, nullptr).ok());
  // Expected: relu(W^T x) identical for every destination.
  for (int64_t d = 1; d < lg.num_dst; ++d) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(out.at(d, c), out.at(0, c), 1e-4);
    }
  }
}

TEST(Model, FactoryBuildsAllKinds) {
  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kSage, GnnKind::kGin,
                       GnnKind::kGat, GnnKind::kGgnn}) {
    ModelConfig cfg = ModelConfig::Make(kind, 16, 8, 4, 3, 77);
    auto r = GnnModel::Create(cfg);
    ASSERT_TRUE(r.ok());
    GnnModel& m = r.ValueOrDie();
    EXPECT_EQ(m.num_layers(), 3);
    EXPECT_EQ(m.layer(0)->in_dim(), 16);
    EXPECT_EQ(m.layer(2)->out_dim(), 4);
    EXPECT_GT(m.ParamBytes(), 0);
    EXPECT_FALSE(m.AllParams().empty());
    EXPECT_EQ(m.AllParams().size(), m.AllGrads().size());
  }
}

TEST(Model, RejectsBadDims) {
  ModelConfig cfg;
  cfg.dims = {16};
  EXPECT_TRUE(GnnModel::Create(cfg).status().IsInvalid());
  cfg.dims = {16, 0};
  EXPECT_TRUE(GnnModel::Create(cfg).status().IsInvalid());
}

TEST(Model, SameSeedSameInit) {
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, 8, 4, 2, 2, 5);
  auto a = GnnModel::Create(cfg);
  auto b = GnnModel::Create(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  auto pa = a.ValueOrDie().AllParams();
  auto pb = b.ValueOrDie().AllParams();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(Tensor::MaxAbsDiff(*pa[i], *pb[i]), 0.0);
  }
}

TEST(Loss, GradientMatchesFiniteDifference) {
  const int64_t n = 6, c = 4;
  Tensor logits = Tensor::Gaussian(n, c, 1.0f, 60);
  std::vector<int32_t> labels = {0, 1, 2, 3, 1, 2};
  std::vector<VertexId> verts = {0, 2, 4};
  Tensor d(n, c);
  LossResult lr = SoftmaxCrossEntropy(logits, labels, verts, &d);
  EXPECT_GT(lr.loss, 0);
  const double eps = 1e-3;
  for (int64_t i = 0; i < logits.size(); ++i) {
    const float keep = logits.data()[i];
    logits.data()[i] = keep + static_cast<float>(eps);
    const double fp = SoftmaxCrossEntropy(logits, labels, verts, nullptr).loss;
    logits.data()[i] = keep - static_cast<float>(eps);
    const double fm = SoftmaxCrossEntropy(logits, labels, verts, nullptr).loss;
    logits.data()[i] = keep;
    EXPECT_NEAR(d.data()[i], (fp - fm) / (2 * eps), 2e-3);
  }
}

TEST(Loss, UnlabeledRowsGetZeroGradient) {
  Tensor logits = Tensor::Gaussian(4, 3, 1.0f, 61);
  std::vector<int32_t> labels = {0, 1, 2, 0};
  Tensor d(4, 3);
  SoftmaxCrossEntropy(logits, labels, {1, 3}, &d);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(d.at(0, c), 0.0f);
    EXPECT_EQ(d.at(2, c), 0.0f);
  }
}

TEST(Loss, EmptyVertexSet) {
  Tensor logits(2, 2);
  std::vector<int32_t> labels = {0, 1};
  LossResult lr = SoftmaxCrossEntropy(logits, labels, {}, nullptr);
  EXPECT_EQ(lr.loss, 0.0);
  EXPECT_EQ(Accuracy(logits, labels, {}), 0.0);
}

TEST(Loss, PerfectPredictionAccuracy) {
  Tensor logits(3, 2);
  logits.at(0, 0) = 5;
  logits.at(1, 1) = 5;
  logits.at(2, 0) = 5;
  std::vector<int32_t> labels = {0, 1, 0};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1, 2}), 1.0);
}

}  // namespace
}  // namespace hongtu
