// Tests for graph/dataset (de)serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "hongtu/graph/io.h"

namespace hongtu {
namespace {

std::string TmpPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(EdgeListIo, RoundTrip) {
  const std::string path = TmpPath("ht_edges.txt");
  EdgeList edges = {{0, 1}, {1, 2}, {2, 0}, {3, 1}};
  ASSERT_TRUE(WriteEdgeListText(path, edges).ok());
  auto r = ReadEdgeListText(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie(), edges);
  std::remove(path.c_str());
}

TEST(EdgeListIo, SkipsCommentsAndBlankLines) {
  const std::string path = TmpPath("ht_edges_comments.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# a comment\n\n0 1\n%% another\n 2 3\n");
  std::fclose(f);
  auto r = ReadEdgeListText(path);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().size(), 2u);
  EXPECT_EQ(r.ValueOrDie()[1], (std::pair<VertexId, VertexId>{2, 3}));
  std::remove(path.c_str());
}

TEST(EdgeListIo, ParseErrorHasLineNumber) {
  const std::string path = TmpPath("ht_edges_bad.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "0 1\nnot an edge\n");
  std::fclose(f);
  auto r = ReadEdgeListText(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(":2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EdgeListIo, MissingFileFails) {
  EXPECT_EQ(ReadEdgeListText("/nonexistent/xyz.txt").status().code(),
            StatusCode::kIoError);
}

TEST(EdgeListIo, LoadGraphBuildsWithSelfLoops) {
  const std::string path = TmpPath("ht_edges_graph.txt");
  ASSERT_TRUE(WriteEdgeListText(path, {{0, 1}, {1, 2}}).ok());
  auto g = LoadGraphFromEdgeList(path, 3);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().num_edges(), 5);  // 2 edges + 3 self-loops
  std::remove(path.c_str());
}

TEST(DatasetIo, RoundTripPreservesEverything) {
  auto dsr = LoadDatasetScaled("reddit", 0.1);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  const std::string path = TmpPath("ht_dataset.htds");
  ASSERT_TRUE(SaveDataset(path, ds).ok());

  auto back = LoadDatasetFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const Dataset& ds2 = back.ValueOrDie();
  EXPECT_EQ(ds2.name, ds.name);
  EXPECT_EQ(ds2.graph.num_vertices(), ds.graph.num_vertices());
  EXPECT_EQ(ds2.graph.num_edges(), ds.graph.num_edges());
  EXPECT_EQ(ds2.graph.in_neighbors(), ds.graph.in_neighbors());
  EXPECT_EQ(ds2.graph.in_weights(), ds.graph.in_weights());
  EXPECT_EQ(Tensor::MaxAbsDiff(ds2.features, ds.features), 0.0);
  EXPECT_EQ(ds2.labels, ds.labels);
  EXPECT_EQ(ds2.split, ds.split);
  EXPECT_EQ(ds2.num_classes, ds.num_classes);
  EXPECT_EQ(ds2.paper_num_vertices, ds.paper_num_vertices);
  EXPECT_EQ(ds2.default_chunks_gat, ds.default_chunks_gat);
  std::remove(path.c_str());
}

TEST(DatasetIo, RejectsWrongMagic) {
  const std::string path = TmpPath("ht_not_a_dataset.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "garbage that is long enough to read a header from");
  std::fclose(f);
  auto r = LoadDatasetFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(DatasetIo, RejectsTruncatedFile) {
  auto dsr = LoadDatasetScaled("reddit", 0.05);
  ASSERT_TRUE(dsr.ok());
  const std::string path = TmpPath("ht_truncated.htds");
  ASSERT_TRUE(SaveDataset(path, dsr.ValueOrDie()).ok());
  // Truncate to the first 100 bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[100];
  ASSERT_EQ(std::fread(buf, 1, sizeof(buf), f), sizeof(buf));
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(buf, 1, sizeof(buf), f), sizeof(buf));
  std::fclose(f);
  EXPECT_EQ(LoadDatasetFile(path).status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hongtu
