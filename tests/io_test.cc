// Tests for graph/dataset (de)serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>

#include "hongtu/graph/io.h"

namespace hongtu {
namespace {

std::string TmpPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(EdgeListIo, RoundTrip) {
  const std::string path = TmpPath("ht_edges.txt");
  EdgeList edges = {{0, 1}, {1, 2}, {2, 0}, {3, 1}};
  ASSERT_TRUE(WriteEdgeListText(path, edges).ok());
  auto r = ReadEdgeListText(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie(), edges);
  std::remove(path.c_str());
}

TEST(EdgeListIo, SkipsCommentsAndBlankLines) {
  const std::string path = TmpPath("ht_edges_comments.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# a comment\n\n0 1\n%% another\n 2 3\n");
  std::fclose(f);
  auto r = ReadEdgeListText(path);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().size(), 2u);
  EXPECT_EQ(r.ValueOrDie()[1], (std::pair<VertexId, VertexId>{2, 3}));
  std::remove(path.c_str());
}

TEST(EdgeListIo, ParseErrorHasLineNumber) {
  const std::string path = TmpPath("ht_edges_bad.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "0 1\nnot an edge\n");
  std::fclose(f);
  auto r = ReadEdgeListText(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(":2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EdgeListIo, MissingFileFails) {
  EXPECT_EQ(ReadEdgeListText("/nonexistent/xyz.txt").status().code(),
            StatusCode::kIoError);
}

TEST(EdgeListIo, LoadGraphBuildsWithSelfLoops) {
  const std::string path = TmpPath("ht_edges_graph.txt");
  ASSERT_TRUE(WriteEdgeListText(path, {{0, 1}, {1, 2}}).ok());
  auto g = LoadGraphFromEdgeList(path, 3);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().num_edges(), 5);  // 2 edges + 3 self-loops
  std::remove(path.c_str());
}

TEST(DatasetIo, RoundTripPreservesEverything) {
  auto dsr = LoadDatasetScaled("reddit", 0.1);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  const std::string path = TmpPath("ht_dataset.htds");
  ASSERT_TRUE(SaveDataset(path, ds).ok());

  auto back = LoadDatasetFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const Dataset& ds2 = back.ValueOrDie();
  EXPECT_EQ(ds2.name, ds.name);
  EXPECT_EQ(ds2.graph.num_vertices(), ds.graph.num_vertices());
  EXPECT_EQ(ds2.graph.num_edges(), ds.graph.num_edges());
  EXPECT_EQ(ds2.graph.in_neighbors(), ds.graph.in_neighbors());
  EXPECT_EQ(ds2.graph.in_weights(), ds.graph.in_weights());
  EXPECT_EQ(Tensor::MaxAbsDiff(ds2.features, ds.features), 0.0);
  EXPECT_EQ(ds2.labels, ds.labels);
  EXPECT_EQ(ds2.split, ds.split);
  EXPECT_EQ(ds2.num_classes, ds.num_classes);
  EXPECT_EQ(ds2.paper_num_vertices, ds.paper_num_vertices);
  EXPECT_EQ(ds2.default_chunks_gat, ds.default_chunks_gat);
  std::remove(path.c_str());
}

TEST(DatasetIo, RejectsWrongMagic) {
  const std::string path = TmpPath("ht_not_a_dataset.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "garbage that is long enough to read a header from");
  std::fclose(f);
  auto r = LoadDatasetFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(EdgeListIo, RejectsOverlongLine) {
  const std::string path = TmpPath("ht_edges_overlong.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "0 1\n1 ");
  for (int i = 0; i < 400; ++i) std::fputc('2', f);
  std::fprintf(f, "\n");
  std::fclose(f);
  auto r = ReadEdgeListText(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("overlong"), std::string::npos)
      << r.status().ToString();
  std::remove(path.c_str());
}

TEST(EdgeListIo, RejectsOutOfRangeVertexId) {
  const std::string path = TmpPath("ht_edges_range.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  // 2^40 does not fit VertexId (int32); silently truncating it would wire
  // the edge to an arbitrary vertex.
  std::fprintf(f, "0 1\n1099511627776 1\n");
  std::fclose(f);
  auto r = ReadEdgeListText(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
  std::remove(path.c_str());
}

// ---- Corrupted .htds fixtures. ---------------------------------------------
// The on-disk layout (see SaveDataset) is deterministic, so specific fields
// can be patched byte-precisely: magic(4) version(4) name(8+len) nv(8)
// in_offsets(8 + (nv+1)*8) in_neighbors(8 + E*4) ...

class CorruptDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dsr = LoadDatasetScaled("reddit", 0.05);
    ASSERT_TRUE(dsr.ok());
    ds_ = dsr.MoveValueUnsafe();
    path_ = TmpPath("ht_corrupt.htds");
    ASSERT_TRUE(SaveDataset(path_, ds_).ok());
    name_end_ = 8 + 8 + static_cast<int64_t>(ds_.name.size());
    offsets_len_pos_ = name_end_ + 8;
    offsets_data_pos_ = offsets_len_pos_ + 8;
    neighbors_len_pos_ =
        offsets_data_pos_ + (ds_.graph.num_vertices() + 1) * 8;
    neighbors_data_pos_ = neighbors_len_pos_ + 8;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void PatchBytes(int64_t pos, const void* data, size_t n) {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(pos), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(data, 1, n, f), n);
    std::fclose(f);
  }

  void ExpectLoadFailsWith(const std::string& needle) {
    auto r = LoadDatasetFile(path_);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
    EXPECT_NE(r.status().message().find(needle), std::string::npos)
        << r.status().ToString();
  }

  Dataset ds_;
  std::string path_;
  int64_t name_end_ = 0;
  int64_t offsets_len_pos_ = 0;
  int64_t offsets_data_pos_ = 0;
  int64_t neighbors_len_pos_ = 0;
  int64_t neighbors_data_pos_ = 0;
};

TEST_F(CorruptDatasetTest, HugeVectorLengthRejectedWithoutAllocating) {
  // A corrupted length field must be caught by the remaining-bytes bound,
  // not by an attempted petabyte resize().
  const int64_t huge = 1ll << 50;
  PatchBytes(offsets_len_pos_, &huge, sizeof(huge));
  ExpectLoadFailsWith("vector length exceeds file size");
}

TEST_F(CorruptDatasetTest, HugeStringLengthRejected) {
  const int64_t huge = 1ll << 40;
  PatchBytes(8, &huge, sizeof(huge));
  ExpectLoadFailsWith("bad string length");
}

TEST_F(CorruptDatasetTest, NonMonotoneOffsetsRejected) {
  // in_offsets[1] jumping past in_offsets.back() breaks monotonicity (or the
  // bounds check, depending on the stored edge count) — either way the load
  // must refuse before indexing neighbors with it.
  const EdgeId garbage = ds_.graph.num_edges() + 1000000;
  PatchBytes(offsets_data_pos_ + 8, &garbage, sizeof(garbage));
  ExpectLoadFailsWith("corrupt graph section");
}

TEST_F(CorruptDatasetTest, OutOfRangeNeighborRejected) {
  const VertexId garbage = std::numeric_limits<VertexId>::max();
  PatchBytes(neighbors_data_pos_, &garbage, sizeof(garbage));
  ExpectLoadFailsWith("neighbor id out of range");
}

TEST_F(CorruptDatasetTest, OutOfRangeLabelRejected) {
  // labels live after the feature block: rows(8) cols(8) rows*cols*4
  // floats, then num_classes(4), then the label vector length(8).
  const int64_t neighbors_end =
      neighbors_data_pos_ + ds_.graph.num_edges() * 4;
  const int64_t labels_data_pos = neighbors_end + 8 + 8 +
                                  ds_.features.rows() * ds_.features.cols() *
                                      4 +
                                  4 + 8;
  const int32_t garbage = -5;
  PatchBytes(labels_data_pos, &garbage, sizeof(garbage));
  ExpectLoadFailsWith("class id out of range");
}

TEST(DatasetIo, RejectsTruncatedFile) {
  auto dsr = LoadDatasetScaled("reddit", 0.05);
  ASSERT_TRUE(dsr.ok());
  const std::string path = TmpPath("ht_truncated.htds");
  ASSERT_TRUE(SaveDataset(path, dsr.ValueOrDie()).ok());
  // Truncate to the first 100 bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[100];
  ASSERT_EQ(std::fread(buf, 1, sizeof(buf), f), sizeof(buf));
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(buf, 1, sizeof(buf), f), sizeof(buf));
  std::fclose(f);
  EXPECT_EQ(LoadDatasetFile(path).status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hongtu
