// Tests for metis_lite and 2-level partitioning (§4.1 invariants).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <tuple>

#include "hongtu/graph/builder.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/partition/metis_lite.h"
#include "hongtu/partition/two_level.h"

namespace hongtu {
namespace {

Dataset SmallWeb() {
  auto r = LoadDatasetScaled("it-2004", 0.05);
  EXPECT_TRUE(r.ok());
  return r.MoveValueUnsafe();
}

TEST(MetisLite, SinglePartIsTrivial) {
  Dataset ds = SmallWeb();
  auto r = MetisLitePartition(ds.graph, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().edge_cut, 0);
  for (int32_t p : r.ValueOrDie().part_of) EXPECT_EQ(p, 0);
}

TEST(MetisLite, RejectsBadArgs) {
  Dataset ds = SmallWeb();
  EXPECT_TRUE(MetisLitePartition(ds.graph, 0).status().IsInvalid());
  Graph empty;
  EXPECT_TRUE(MetisLitePartition(empty, 2).status().IsInvalid());
}

TEST(MetisLite, CutBeatsRandomAssignment) {
  Dataset ds = SmallWeb();
  auto r = MetisLitePartition(ds.graph, 4);
  ASSERT_TRUE(r.ok());
  // Random 4-way assignment cuts ~75% of edges; metis-lite should do far
  // better on a local web graph.
  std::vector<int32_t> random_part(ds.graph.num_vertices());
  for (size_t v = 0; v < random_part.size(); ++v) {
    random_part[v] = static_cast<int32_t>(v % 4);
  }
  const int64_t random_cut = ComputeEdgeCut(ds.graph, random_part);
  EXPECT_LT(r.ValueOrDie().edge_cut, random_cut / 3);
}

class MetisParamTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(MetisParamTest, BalancedCover) {
  const auto& [name, k] = GetParam();
  auto dsr = LoadDatasetScaled(name, 0.05);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  auto r = MetisLitePartition(ds.graph, k);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const PartitionResult& pr = r.ValueOrDie();
  ASSERT_EQ(static_cast<int64_t>(pr.part_of.size()), ds.graph.num_vertices());
  std::vector<int64_t> count(k, 0);
  for (int32_t p : pr.part_of) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, k);
    count[p]++;
  }
  const int64_t avg = ds.graph.num_vertices() / k;
  for (int64_t c : count) {
    EXPECT_GT(c, 0);
    EXPECT_LT(c, 2 * avg + 16) << "imbalanced partition";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetisParamTest,
    ::testing::Combine(::testing::Values("reddit", "it-2004", "friendster",
                                         "ogbn-paper"),
                       ::testing::Values(2, 4, 8)));

TEST(MetisLite, DeterministicForFixedSeed) {
  Dataset ds = SmallWeb();
  MetisLiteOptions o;
  o.seed = 123;
  auto a = MetisLitePartition(ds.graph, 4, o);
  auto b = MetisLitePartition(ds.graph, 4, o);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.ValueOrDie().part_of, b.ValueOrDie().part_of);
  EXPECT_EQ(a.ValueOrDie().edge_cut, b.ValueOrDie().edge_cut);
}

TEST(MetisLite, MoreRefinementNeverWorsensCut) {
  Dataset ds = SmallWeb();
  MetisLiteOptions few;
  few.refine_passes = 1;
  MetisLiteOptions many;
  many.refine_passes = 12;
  auto a = MetisLitePartition(ds.graph, 4, few);
  auto b = MetisLitePartition(ds.graph, 4, many);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LE(b.ValueOrDie().edge_cut, a.ValueOrDie().edge_cut);
}

TEST(TwoLevel, RejectsBadArgs) {
  Dataset ds = SmallWeb();
  EXPECT_TRUE(BuildTwoLevelPartition(ds.graph, 0, 1).status().IsInvalid());
  EXPECT_TRUE(BuildTwoLevelPartition(ds.graph, 1, 0).status().IsInvalid());
}

class TwoLevelParamTest
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(TwoLevelParamTest, ChunksPartitionTheGraph) {
  const auto& [name, m, n] = GetParam();
  auto dsr = LoadDatasetScaled(name, 0.05);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  auto r = BuildTwoLevelPartition(ds.graph, m, n);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const TwoLevelPartition& tl = r.ValueOrDie();
  ASSERT_EQ(tl.num_partitions, m);
  ASSERT_EQ(tl.num_chunks, n);

  // Destination sets are disjoint and cover V; every destination's full
  // in-edge set is present (full-neighbor aggregation, §4.1).
  std::vector<int> seen(ds.graph.num_vertices(), 0);
  int64_t total_edges = 0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const Chunk& c = tl.chunks[i][j];
      for (size_t d = 0; d < c.dst_vertices.size(); ++d) {
        const VertexId v = c.dst_vertices[d];
        seen[v]++;
        EXPECT_EQ(tl.partition_of[v], i);
        EXPECT_EQ(c.in_offsets[d + 1] - c.in_offsets[d],
                  ds.graph.in_degree(v));
      }
      total_edges += c.num_edges();
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
  EXPECT_EQ(total_edges, ds.graph.num_edges());
}

TEST_P(TwoLevelParamTest, ChunkLocalStructureConsistent) {
  const auto& [name, m, n] = GetParam();
  auto dsr = LoadDatasetScaled(name, 0.05);
  ASSERT_TRUE(dsr.ok());
  const Dataset& ds = dsr.ValueOrDie();
  auto r = BuildTwoLevelPartition(ds.graph, m, n);
  ASSERT_TRUE(r.ok());
  for (const auto& row : r.ValueOrDie().chunks) {
    for (const Chunk& c : row) {
      // Neighbor set is sorted and unique.
      EXPECT_TRUE(std::is_sorted(c.neighbors.begin(), c.neighbors.end()));
      EXPECT_EQ(std::adjacent_find(c.neighbors.begin(), c.neighbors.end()),
                c.neighbors.end());
      // Every edge references a valid neighbor slot; weights match graph.
      for (int64_t e = 0; e < c.num_edges(); ++e) {
        ASSERT_GE(c.nbr_idx[e], 0);
        ASSERT_LT(c.nbr_idx[e], c.num_neighbors());
      }
      // self_idx resolves each destination to itself.
      for (size_t d = 0; d < c.dst_vertices.size(); ++d) {
        ASSERT_GE(c.self_idx[d], 0);
        EXPECT_EQ(c.neighbors[c.self_idx[d]], c.dst_vertices[d]);
      }
      // CSR mirror holds the same edge multiset.
      EXPECT_EQ(static_cast<int64_t>(c.dst_idx.size()), c.num_edges());
      std::multiset<std::pair<int32_t, int32_t>> csc, csr;
      for (size_t d = 0; d < c.dst_vertices.size(); ++d) {
        for (int64_t e = c.in_offsets[d]; e < c.in_offsets[d + 1]; ++e) {
          csc.insert({c.nbr_idx[e], static_cast<int32_t>(d)});
        }
      }
      for (size_t s = 0; s < c.neighbors.size(); ++s) {
        for (int64_t e = c.src_offsets[s]; e < c.src_offsets[s + 1]; ++e) {
          csr.insert({static_cast<int32_t>(s), c.dst_idx[e]});
          // src_edge_idx maps to a CSC edge with the same endpoints.
          const int32_t ce = c.src_edge_idx[e];
          EXPECT_EQ(c.nbr_idx[ce], static_cast<int32_t>(s));
          EXPECT_EQ(c.in_weights[ce], c.src_weights[e]);
        }
      }
      EXPECT_EQ(csc, csr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoLevelParamTest,
    ::testing::Combine(::testing::Values("it-2004", "friendster"),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(1, 3, 8)));

TEST(ReplicationFactor, GrowsWithPartitionCount) {
  // Table 3's headline trend: alpha increases monotonically with the number
  // of partitions, and the well-mixed social graph replicates far more than
  // the local web graph.
  auto web = LoadDatasetScaled("it-2004", 0.1);
  auto soc = LoadDatasetScaled("friendster", 0.1);
  ASSERT_TRUE(web.ok() && soc.ok());
  double prev_web = 0, prev_soc = 0;
  for (int parts : {2, 8, 32}) {
    auto w = BuildTwoLevelPartition(web.ValueOrDie().graph, 1, parts);
    auto s = BuildTwoLevelPartition(soc.ValueOrDie().graph, 1, parts);
    ASSERT_TRUE(w.ok() && s.ok());
    const double aw = w.ValueOrDie().ReplicationFactor(
        web.ValueOrDie().graph.num_vertices());
    const double as = s.ValueOrDie().ReplicationFactor(
        soc.ValueOrDie().graph.num_vertices());
    EXPECT_GE(aw, prev_web);
    EXPECT_GE(as, prev_soc);
    EXPECT_GE(aw, 1.0);
    prev_web = aw;
    prev_soc = as;
  }
  EXPECT_GT(prev_soc, prev_web);  // friendster-like >> it-2004-like
}

TEST(ExtractChunk, EmptyDestinationSet) {
  Dataset ds = SmallWeb();
  Chunk c = ExtractChunk(ds.graph, {}, 0, 0);
  EXPECT_EQ(c.num_dst(), 0);
  EXPECT_EQ(c.num_edges(), 0);
  EXPECT_EQ(c.num_neighbors(), 0);
}

TEST(ExtractChunk, FullGraphIsIdentity) {
  Dataset ds = SmallWeb();
  std::vector<VertexId> all(ds.graph.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  Chunk c = ExtractChunk(ds.graph, std::move(all), 0, 0);
  // Self-loops make every vertex a source: the neighbor set is the identity.
  ASSERT_EQ(c.num_neighbors(), ds.graph.num_vertices());
  for (int64_t v = 0; v < c.num_neighbors(); ++v) {
    EXPECT_EQ(c.neighbors[v], v);
    EXPECT_EQ(c.self_idx[v], v);
  }
  EXPECT_EQ(c.num_edges(), ds.graph.num_edges());
}

}  // namespace
}  // namespace hongtu
