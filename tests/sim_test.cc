// Tests for the simulated platform: device allocator, interconnect meters,
// and the analytic memory model (Table 1).

#include <gtest/gtest.h>

#include "hongtu/sim/device.h"
#include "hongtu/sim/interconnect.h"
#include "hongtu/sim/memory_model.h"

namespace hongtu {
namespace {

TEST(SimDevice, AllocateAndFree) {
  SimDevice dev(0, 1000);
  ASSERT_TRUE(dev.Allocate(600, "a").ok());
  EXPECT_EQ(dev.used(), 600);
  EXPECT_EQ(dev.peak(), 600);
  dev.Free(200);
  EXPECT_EQ(dev.used(), 400);
  EXPECT_EQ(dev.peak(), 600);
}

TEST(SimDevice, OutOfMemorySurfaces) {
  SimDevice dev(3, 100);
  ASSERT_TRUE(dev.Allocate(80, "x").ok());
  const Status st = dev.Allocate(30, "y");
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_NE(st.message().find("device 3"), std::string::npos);
  EXPECT_EQ(dev.used(), 80);  // failed allocation not charged
}

TEST(SimDevice, NegativeAllocationRejected) {
  SimDevice dev(0, 100);
  EXPECT_TRUE(dev.Allocate(-5, "z").IsInvalid());
}

TEST(SimDevice, FreeNeverGoesNegative) {
  SimDevice dev(0, 100);
  dev.Free(50);
  EXPECT_EQ(dev.used(), 0);
}

TEST(DeviceAllocation, RaiiReleases) {
  SimDevice dev(0, 100);
  {
    ASSERT_TRUE(dev.Allocate(60, "t").ok());
    DeviceAllocation guard(&dev, 60);
    EXPECT_EQ(dev.used(), 60);
  }
  EXPECT_EQ(dev.used(), 0);
}

TEST(DeviceAllocation, MoveTransfersOwnership) {
  SimDevice dev(0, 100);
  ASSERT_TRUE(dev.Allocate(40, "t").ok());
  DeviceAllocation a(&dev, 40);
  DeviceAllocation b = std::move(a);
  EXPECT_EQ(b.bytes(), 40);
  a.Release();  // no-op after move
  EXPECT_EQ(dev.used(), 40);
  b.Release();
  EXPECT_EQ(dev.used(), 0);
}

TEST(TimeBreakdown, SumAndMax) {
  TimeBreakdown a, b;
  a.gpu = 1;
  a.h2d = 2;
  b.gpu = 3;
  b.cpu = 1;
  TimeBreakdown mx = TimeBreakdown::Max(a, b);
  EXPECT_EQ(mx.gpu, 3);
  EXPECT_EQ(mx.h2d, 2);
  EXPECT_EQ(mx.cpu, 1);
  a += b;
  EXPECT_EQ(a.gpu, 4);
  EXPECT_DOUBLE_EQ(a.total(), 4 + 2 + 0 + 1 + 0);
}

TEST(SimPlatform, MetersConvertBytesToTime) {
  InterconnectParams p;
  p.t_hd = 100.0;  // 100 B/s for easy arithmetic
  p.t_dd = 200.0;
  p.t_ru = 400.0;
  p.xfer_latency_s = 0.0;
  p.kernel_launch_s = 0.0;
  SimPlatform plat(2, 1 << 20, p);
  plat.AddH2D(0, 100);   // 1 s
  plat.AddD2D(1, 400);   // 2 s
  plat.AddReuse(0, 400); // 1 s
  plat.Synchronize();
  EXPECT_DOUBLE_EQ(plat.time().h2d, 1.0);
  EXPECT_DOUBLE_EQ(plat.time().d2d, 2.0);
  EXPECT_DOUBLE_EQ(plat.time().ru, 1.0);
  EXPECT_EQ(plat.bytes().h2d, 100);
  EXPECT_EQ(plat.bytes().d2d, 400);
  EXPECT_EQ(plat.bytes().ru, 400);
}

TEST(SimPlatform, SynchronizeTakesMaxAcrossDevices) {
  InterconnectParams p;
  p.t_hd = 100.0;
  p.xfer_latency_s = 0.0;
  p.kernel_launch_s = 0.0;
  SimPlatform plat(2, 1 << 20, p);
  // Concurrent phase: device 0 moves 100 B, device 1 moves 300 B.
  plat.AddH2D(0, 100);
  plat.AddH2D(1, 300);
  plat.Synchronize();
  EXPECT_DOUBLE_EQ(plat.time().h2d, 3.0);  // max, not sum
  // Two sequential phases add up.
  plat.AddH2D(0, 100);
  plat.Synchronize();
  EXPECT_DOUBLE_EQ(plat.time().h2d, 4.0);
}

TEST(SimPlatform, GpuRoofline) {
  InterconnectParams p;
  p.gpu_flops = 10.0;
  p.gpu_mem_bw = 100.0;
  p.kernel_launch_s = 0.0;
  SimPlatform plat(1, 1 << 20, p);
  plat.AddGpuCompute(0, 20.0, 10.0);  // flop-bound: 2 s
  plat.Synchronize();
  EXPECT_DOUBLE_EQ(plat.time().gpu, 2.0);
  plat.AddGpuCompute(0, 1.0, 1000.0);  // memory-bound: 10 s
  plat.Synchronize();
  EXPECT_DOUBLE_EQ(plat.time().gpu, 12.0);
}

TEST(SimPlatform, CpuAccumAndReset) {
  InterconnectParams p;
  p.cpu_accum_bw = 10.0;
  SimPlatform plat(1, 1 << 20, p);
  plat.AddCpuAccum(100);
  plat.Synchronize();
  EXPECT_DOUBLE_EQ(plat.time().cpu, 10.0);
  plat.ResetEpoch();
  EXPECT_DOUBLE_EQ(plat.time().total(), 0.0);
  EXPECT_EQ(plat.bytes().cpu_accum, 0);
}

TEST(SimPlatform, PeakTracking) {
  SimPlatform plat(2, 1000);
  ASSERT_TRUE(plat.device(0).Allocate(700, "a").ok());
  ASSERT_TRUE(plat.device(1).Allocate(300, "b").ok());
  EXPECT_EQ(plat.MaxDevicePeak(), 700);
  EXPECT_EQ(plat.SumDevicePeaks(), 1000);
  plat.device(0).Free(700);
  plat.device(1).Free(300);
  plat.ResetPeaks();
  EXPECT_EQ(plat.MaxDevicePeak(), 0);
}

TEST(MemoryModel, Table1ShapeAtPaperScale) {
  // it-2004, 3-layer GCN, dims 256-128-128-64 (Table 1 row 1): the paper
  // reports 12.8 GB topology / 177.2 GB vertex / 108.3 GB intermediate.
  // Our model must land in the same ballpark (same order, same ranking).
  MemoryModelInput in;
  in.num_vertices = 41000000;
  in.num_edges = 1200000000;
  in.dims = {256, 128, 128, 64};
  in.kind = ModelKind::kGcn;
  const MemoryModelOutput out = EvaluateMemoryModel(in);
  const double gb = 1024.0 * 1024.0 * 1024.0;
  EXPECT_GT(out.topology_bytes / gb, 8.0);
  EXPECT_LT(out.topology_bytes / gb, 20.0);
  EXPECT_GT(out.vertex_data_bytes / gb, 120.0);
  EXPECT_LT(out.vertex_data_bytes / gb, 250.0);
  EXPECT_GT(out.intermediate_data_bytes / gb, 70.0);
  EXPECT_LT(out.intermediate_data_bytes / gb, 180.0);
  // Ranking from Table 1: vertex > intermediate > topology.
  EXPECT_GT(out.vertex_data_bytes, out.intermediate_data_bytes);
  EXPECT_GT(out.intermediate_data_bytes, out.topology_bytes);
}

TEST(MemoryModel, GatAddsEdgeState) {
  MemoryModelInput in;
  in.num_vertices = 100000;
  in.num_edges = 3000000;
  in.dims = {64, 32, 16};
  in.kind = ModelKind::kGcn;
  const auto gcn = EvaluateMemoryModel(in);
  in.kind = ModelKind::kGat;
  const auto gat = EvaluateMemoryModel(in);
  EXPECT_GT(gat.intermediate_data_bytes, gcn.intermediate_data_bytes);
  EXPECT_EQ(gat.vertex_data_bytes, gcn.vertex_data_bytes);
}

TEST(MemoryModel, PerLayerBytesPositiveAndLayerDependent) {
  MemoryModelInput in;
  in.num_vertices = 1000;
  in.num_edges = 10000;
  in.dims = {64, 32, 16};
  EXPECT_GT(PerLayerVertexBytes(in, 0), PerLayerVertexBytes(in, 1));
}

}  // namespace
}  // namespace hongtu
