// Unit tests for hongtu/graph: builder invariants, generators, datasets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "hongtu/graph/builder.h"
#include "hongtu/graph/datasets.h"
#include "hongtu/graph/generators.h"
#include "hongtu/graph/stats.h"

namespace hongtu {
namespace {

Graph Diamond() {
  // 0->1, 0->2, 1->3, 2->3 plus self-loops (added by the builder).
  GraphBuilder b;
  auto r = b.Build(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValueUnsafe();
}

TEST(Builder, AddsSelfLoops) {
  Graph g = Diamond();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 8);  // 4 edges + 4 self-loops
  for (VertexId v = 0; v < 4; ++v) {
    bool self = false;
    for (EdgeId e = g.in_offsets()[v]; e < g.in_offsets()[v + 1]; ++e) {
      if (g.in_neighbors()[e] == v) self = true;
    }
    EXPECT_TRUE(self) << "vertex " << v;
  }
}

TEST(Builder, DeduplicatesEdges) {
  GraphBuilder b;
  auto r = b.Build(2, {{0, 1}, {0, 1}, {0, 1}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_edges(), 3);  // 1 edge + 2 self-loops
}

TEST(Builder, RejectsOutOfRangeEndpoints) {
  GraphBuilder b;
  EXPECT_TRUE(b.Build(2, {{0, 5}}).status().IsInvalid());
  EXPECT_TRUE(b.Build(2, {{-1, 0}}).status().IsInvalid());
  EXPECT_TRUE(b.Build(0, {}).status().IsInvalid());
}

TEST(Builder, SymmetrizeAddsReverseEdges) {
  GraphBuilderOptions opts;
  opts.symmetrize = true;
  GraphBuilder b(opts);
  auto r = b.Build(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(r.ok());
  const Graph& g = r.ValueOrDie();
  EXPECT_EQ(g.num_edges(), 7);  // 2 fwd + 2 rev + 3 self
}

TEST(Builder, CsrCscHoldSameEdges) {
  Graph g = Diamond();
  std::multiset<std::pair<int, int>> csr, csc;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (EdgeId e = g.out_offsets()[u]; e < g.out_offsets()[u + 1]; ++e) {
      csr.insert({u, g.out_neighbors()[e]});
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (EdgeId e = g.in_offsets()[v]; e < g.in_offsets()[v + 1]; ++e) {
      csc.insert({g.in_neighbors()[e], v});
    }
  }
  EXPECT_EQ(csr, csc);
}

TEST(Builder, GcnWeightsAreSymmetricNormalized) {
  Graph g = Diamond();
  // w(u,v) = 1/sqrt(deg_in(u) deg_in(v)).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (EdgeId e = g.in_offsets()[v]; e < g.in_offsets()[v + 1]; ++e) {
      const VertexId u = g.in_neighbors()[e];
      const float expect =
          1.0f / std::sqrt(static_cast<float>(g.in_degree(u)) *
                           static_cast<float>(g.in_degree(v)));
      EXPECT_FLOAT_EQ(g.in_weights()[e], expect);
    }
  }
}

TEST(Builder, OutWeightsMatchInWeights) {
  Graph g = Diamond();
  // For every CSR edge (u,v) find the matching CSC edge and compare weight.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (EdgeId e = g.out_offsets()[u]; e < g.out_offsets()[u + 1]; ++e) {
      const VertexId v = g.out_neighbors()[e];
      float csc_w = -1;
      for (EdgeId f = g.in_offsets()[v]; f < g.in_offsets()[v + 1]; ++f) {
        if (g.in_neighbors()[f] == u) csc_w = g.in_weights()[f];
      }
      EXPECT_FLOAT_EQ(g.out_weights()[e], csc_w);
    }
  }
}

TEST(Builder, TopologyBytesPositive) {
  EXPECT_GT(Diamond().TopologyBytes(), 0);
}

TEST(Generators, RmatSizesAndDeterminism) {
  RmatOptions o;
  o.seed = 5;
  auto r1 = GenerateRmat(1024, 5000, o);
  auto r2 = GenerateRmat(1024, 5000, o);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.ValueOrDie().size(), 5000u);
  EXPECT_EQ(r1.ValueOrDie(), r2.ValueOrDie());
}

TEST(Generators, RmatIsSkewed) {
  RmatOptions o;
  auto r = GenerateRmat(4096, 40000, o);
  ASSERT_TRUE(r.ok());
  std::vector<int> deg(4096, 0);
  for (auto& [s, d] : r.ValueOrDie()) deg[s]++;
  const int mx = *std::max_element(deg.begin(), deg.end());
  const double avg = 40000.0 / 4096.0;
  EXPECT_GT(mx, 5 * avg);  // heavy tail
}

TEST(Generators, RmatRejectsBadProbs) {
  RmatOptions o;
  o.a = 0.9;
  o.b = 0.9;
  EXPECT_TRUE(GenerateRmat(16, 10, o).status().IsInvalid());
}

TEST(Generators, SbmLabelsAndIntraFraction) {
  SbmOptions o;
  o.num_blocks = 8;
  o.intra_prob = 0.9;
  auto r = GenerateSbm(4000, 40000, o);
  ASSERT_TRUE(r.ok());
  const SbmGraph& sg = r.ValueOrDie();
  EXPECT_EQ(sg.block_of.size(), 4000u);
  for (int32_t blk : sg.block_of) {
    EXPECT_GE(blk, 0);
    EXPECT_LT(blk, 8);
  }
  int64_t intra = 0;
  for (auto& [u, v] : sg.edges) {
    if (sg.block_of[u] == sg.block_of[v]) ++intra;
  }
  // intra_prob + random-chance hits.
  EXPECT_GT(static_cast<double>(intra) / sg.edges.size(), 0.85);
}

TEST(Generators, WebGraphIsLocal) {
  WebGraphOptions o;
  o.locality_window = 256;
  auto r = GenerateWebGraph(20000, o);
  ASSERT_TRUE(r.ok());
  int64_t local = 0;
  for (auto& [u, v] : r.ValueOrDie()) {
    if (std::abs(u - v) <= 2 * o.locality_window) ++local;
  }
  EXPECT_GT(static_cast<double>(local) / r.ValueOrDie().size(), 0.5);
}

TEST(Generators, CitationPointsBackwards) {
  CitationOptions o;
  auto r = GenerateCitation(10000, o);
  ASSERT_TRUE(r.ok());
  for (auto& [u, v] : r.ValueOrDie()) EXPECT_LT(v, u);
}

TEST(Generators, CitationIsRecencyBiased) {
  CitationOptions o;
  auto r = GenerateCitation(20000, o);
  ASSERT_TRUE(r.ok());
  int64_t recent = 0;
  for (auto& [u, v] : r.ValueOrDie()) {
    if (u - v <= 8192) ++recent;
  }
  EXPECT_GT(static_cast<double>(recent) / r.ValueOrDie().size(), 0.6);
}

TEST(GraphStats, CapturesStructuralCharacter) {
  auto soc = LoadDatasetScaled("friendster", 0.1);
  auto web = LoadDatasetScaled("it-2004", 0.1);
  ASSERT_TRUE(soc.ok() && web.ok());
  const GraphStats ss = ComputeGraphStats(soc.ValueOrDie().graph);
  const GraphStats ws = ComputeGraphStats(web.ValueOrDie().graph);
  // Social graph: heavy-tailed degrees, non-local edges.
  EXPECT_GT(ss.degree_gini, 2 * ws.degree_gini);
  // Web graph: most edges near the diagonal.
  EXPECT_GT(ws.local_edge_fraction, 2 * ss.local_edge_fraction);
  EXPECT_GT(ss.median_edge_distance, ws.median_edge_distance);
  EXPECT_GT(ss.max_in_degree, static_cast<int64_t>(4 * ss.avg_in_degree));
}

TEST(GraphStats, EmptyGraphIsZero) {
  Graph g;
  const GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_vertices, 0);
  EXPECT_EQ(s.degree_gini, 0.0);
}

TEST(Datasets, RegistryListsFivePaperDatasets) {
  const auto& names = AllDatasetNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "reddit");
  EXPECT_EQ(names[4], "friendster");
}

TEST(Datasets, UnknownNameFails) {
  EXPECT_TRUE(LoadDataset("livejournal").status().IsNotFound());
}

TEST(Datasets, BadScaleFails) {
  EXPECT_TRUE(LoadDatasetScaled("reddit", 0.0).status().IsInvalid());
  EXPECT_TRUE(LoadDatasetScaled("reddit", 2.0).status().IsInvalid());
}

TEST(Datasets, AliasesResolve) {
  auto a = LoadDatasetScaled("RDT", 0.05);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a.ValueOrDie().name, "reddit");
}

class DatasetParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetParamTest, LoadsConsistently) {
  auto r = LoadDatasetScaled(GetParam(), 0.05);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Dataset& ds = r.ValueOrDie();
  EXPECT_GT(ds.graph.num_vertices(), 0);
  EXPECT_GT(ds.graph.num_edges(), ds.graph.num_vertices());  // self-loops+
  EXPECT_EQ(ds.features.rows(), ds.graph.num_vertices());
  EXPECT_EQ(static_cast<int64_t>(ds.labels.size()), ds.graph.num_vertices());
  EXPECT_EQ(static_cast<int64_t>(ds.split.size()), ds.graph.num_vertices());
  for (int32_t l : ds.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, ds.num_classes);
  }
  // Split fractions follow the real datasets' labeled splits (25/25/50 for
  // the unlabeled graphs, §7.1; e.g. ogbn-paper trains on ~1.1%).
  const auto train = ds.VerticesWithRole(SplitRole::kTrain);
  EXPECT_GT(train.size(), 0u);
  const double frac =
      static_cast<double>(train.size()) / ds.graph.num_vertices();
  if (ds.name == "it-2004" || ds.name == "friendster") {
    EXPECT_NEAR(frac, 0.25, 0.08);
  } else if (ds.name == "ogbn-paper") {
    EXPECT_LT(frac, 0.05);
  }
  // Paper-scale metadata present.
  EXPECT_GT(ds.paper_num_vertices, 0);
  EXPECT_GT(ds.paper_num_edges, 0);
}

TEST_P(DatasetParamTest, DeterministicAcrossLoads) {
  auto a = LoadDatasetScaled(GetParam(), 0.05, 7);
  auto b = LoadDatasetScaled(GetParam(), 0.05, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.ValueOrDie().graph.num_edges(), b.ValueOrDie().graph.num_edges());
  EXPECT_EQ(Tensor::MaxAbsDiff(a.ValueOrDie().features,
                               b.ValueOrDie().features),
            0.0);
  EXPECT_EQ(a.ValueOrDie().labels, b.ValueOrDie().labels);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetParamTest,
                         ::testing::ValuesIn(AllDatasetNames()));

}  // namespace
}  // namespace hongtu
