// Dataflow task-graph executor tests. Two layers of coverage: the TaskGraph
// runtime itself (edge ordering, token backpressure, independent progress
// past a straggler, sticky error poisoning, the deterministic analytic
// schedule — the TSan CI job runs exactly this binary), and the end-to-end
// pin that the task-graph epoch loop (executor = taskgraph) matches the
// serial loop on loss/accuracy/parameters for every layer type, dedup level,
// and chunk count, with the comp/store chains making the match bitwise.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <tuple>
#include <vector>

#include "hongtu/common/fault.h"
#include "hongtu/common/taskgraph.h"
#include "hongtu/engine/hongtu_engine.h"

namespace hongtu {
namespace {

constexpr int64_t kBig = 1ll << 40;

// ---- TaskGraph runtime -----------------------------------------------------

TEST(TaskGraphRuntime, EdgesGateExecutionOrder) {
  TaskGraph tg(TaskGraph::Options{/*num_workers=*/3});
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    return [&, tag](const TaskGraph::NodeContext&) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
      return Status::OK();
    };
  };
  // Diamond with a tail: 0 -> {1, 2} -> 3 -> 4.
  const auto a = tg.AddNode(record(0));
  const auto b = tg.AddNode(record(1));
  const auto c = tg.AddNode(record(2));
  const auto d = tg.AddNode(record(3));
  const auto e = tg.AddNode(record(4));
  tg.AddEdge(a, b);
  tg.AddEdge(a, c);
  tg.AddEdge(b, d);
  tg.AddEdge(c, d);
  tg.AddEdge(d, e);
  ASSERT_TRUE(tg.Run().ok());
  ASSERT_EQ(order.size(), 5u);
  auto pos = [&](int tag) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == tag) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
  EXPECT_LT(pos(3), pos(4));
}

TEST(TaskGraphRuntime, TokenPoolBoundsInFlight) {
  TaskGraph tg(TaskGraph::Options{/*num_workers=*/4});
  const auto pool = tg.AddTokenPool(2);
  std::atomic<int> holders{0};
  std::atomic<int> max_holders{0};
  for (int i = 0; i < 10; ++i) {
    TaskGraph::NodeOptions ao;
    ao.label = "acquire";
    ao.acquires = pool;
    const auto acq = tg.AddNode(
        [&](const TaskGraph::NodeContext& nc) {
          EXPECT_GE(nc.token, 0);
          EXPECT_LT(nc.token, 2);
          const int h = holders.fetch_add(1) + 1;
          int m = max_holders.load();
          while (m < h && !max_holders.compare_exchange_weak(m, h)) {
          }
          return Status::OK();
        },
        ao);
    TaskGraph::NodeOptions ro;
    ro.label = "release";
    ro.releases_token_of = acq;
    const auto rel = tg.AddNode(
        [&](const TaskGraph::NodeContext&) {
          holders.fetch_sub(1);
          return Status::OK();
        },
        ro);
    tg.AddEdge(acq, rel);
  }
  ASSERT_TRUE(tg.Run().ok());
  EXPECT_EQ(holders.load(), 0);
  EXPECT_GT(max_holders.load(), 0);
  // The backpressure invariant: never more tokens out than the pool holds.
  EXPECT_LE(max_holders.load(), 2);
}

TEST(TaskGraphRuntime, StragglerStallsOnlyItsOwnDependents) {
  // Two independent chains. The straggler (chain A) blocks until chain B —
  // scheduled after it — has fully completed: only an executor that lets
  // ready work overtake a stalled node can finish this graph.
  TaskGraph tg(TaskGraph::Options{/*num_workers=*/2});
  std::mutex mu;
  std::condition_variable cv;
  bool b_done = false;
  std::atomic<int> b_steps{0};
  const auto straggler = tg.AddNode([&](const TaskGraph::NodeContext&) {
    std::unique_lock<std::mutex> lock(mu);
    if (!cv.wait_for(lock, std::chrono::seconds(30),
                     [&] { return b_done; })) {
      return Status::Internal("independent chain never progressed");
    }
    return Status::OK();
  });
  const auto after = tg.AddNode([&](const TaskGraph::NodeContext&) {
    EXPECT_EQ(b_steps.load(), 3);
    return Status::OK();
  });
  tg.AddEdge(straggler, after);
  TaskGraph::NodeId prev = -1;
  for (int i = 0; i < 3; ++i) {
    const auto n = tg.AddNode([&, i](const TaskGraph::NodeContext&) {
      b_steps.fetch_add(1);
      if (i == 2) {
        std::lock_guard<std::mutex> lock(mu);
        b_done = true;
        cv.notify_all();
      }
      return Status::OK();
    });
    if (prev >= 0) tg.AddEdge(prev, n);
    prev = n;
  }
  EXPECT_TRUE(tg.Run().ok());
  EXPECT_EQ(b_steps.load(), 3);
}

TEST(TaskGraphRuntime, ErrorPoisonsSuccessorsAndDrains) {
  TaskGraph tg(TaskGraph::Options{/*num_workers=*/2});
  std::atomic<int> downstream_runs{0};
  const auto ok1 = tg.AddNode(
      [](const TaskGraph::NodeContext&) { return Status::OK(); });
  TaskGraph::NodeOptions fo;
  fo.label = "bwd comp l1 b2";
  const auto fail = tg.AddNode(
      [](const TaskGraph::NodeContext&) {
        return Status::Internal("kernel exploded");
      },
      fo);
  const auto succ = tg.AddNode([&](const TaskGraph::NodeContext&) {
    downstream_runs.fetch_add(1);
    return Status::OK();
  });
  tg.AddEdge(ok1, fail);
  tg.AddEdge(fail, succ);
  const Status st = tg.Run();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("kernel exploded"), std::string::npos);
  // The failing node's dependents are skipped, and the graph still drains.
  EXPECT_EQ(downstream_runs.load(), 0);
  const TaskGraph::FailureInfo& fi = tg.first_error();
  EXPECT_EQ(fi.node, fail);
  EXPECT_EQ(fi.label, "bwd comp l1 b2");
  EXPECT_FALSE(fi.status.ok());
}

TEST(TaskGraphRuntime, PoisoningReleasesParkedTokenWaiters) {
  // One token; its holder fails while a second acquirer is parked on the
  // pool. Poisoning must flush the waiter (as a skip) or Run() deadlocks.
  TaskGraph tg(TaskGraph::Options{/*num_workers=*/2});
  const auto pool = tg.AddTokenPool(1);
  std::atomic<int> skipped_bodies{0};
  TaskGraph::NodeOptions ho;
  ho.acquires = pool;
  ho.label = "holder";
  const auto holder = tg.AddNode(
      [](const TaskGraph::NodeContext&) {
        return Status::OutOfMemory("slot did not fit");
      },
      ho);
  TaskGraph::NodeOptions wo;
  wo.acquires = pool;
  wo.label = "waiter";
  const auto waiter = tg.AddNode(
      [&](const TaskGraph::NodeContext&) {
        skipped_bodies.fetch_add(1);
        return Status::OK();
      },
      wo);
  TaskGraph::NodeOptions ro;
  ro.releases_token_of = waiter;
  const auto rel = tg.AddNode(
      [](const TaskGraph::NodeContext&) { return Status::OK(); }, ro);
  tg.AddEdge(waiter, rel);
  // No edge holder -> waiter: both race for the single token.
  const Status st = tg.Run();
  EXPECT_TRUE(st.IsOutOfMemory()) << st.ToString();
  EXPECT_EQ(tg.first_error().node, holder);
  // Whether the waiter grabbed the token before the holder failed is timing
  // dependent; what must hold is that Run() returned (no deadlock) and the
  // error is the holder's.
  EXPECT_LE(skipped_bodies.load(), 1);
}

TEST(TaskGraphRuntime, ScheduleSecondsIsDeterministicListSchedule) {
  TaskGraph tg(TaskGraph::Options{/*num_workers=*/2});
  const auto pool = tg.AddTokenPool(1);
  // Two token-serialized 1 s loads on resource 0, overlapped with one 2 s
  // compute on resource 1. Load B cannot start until load A's releaser
  // (the compute) retires.
  TaskGraph::NodeOptions la;
  la.acquires = pool;
  la.sim_resource = 0;
  const auto load_a = tg.AddNode(
      [](const TaskGraph::NodeContext&) { return Status::OK(); }, la);
  TaskGraph::NodeOptions co;
  co.sim_resource = 1;
  co.releases_token_of = load_a;
  const auto comp = tg.AddNode(
      [](const TaskGraph::NodeContext&) { return Status::OK(); }, co);
  tg.AddEdge(load_a, comp);
  TaskGraph::NodeOptions lb;
  lb.acquires = pool;
  lb.sim_resource = 0;
  const auto load_b = tg.AddNode(
      [](const TaskGraph::NodeContext&) { return Status::OK(); }, lb);
  (void)load_b;
  ASSERT_TRUE(tg.Run().ok());
  const std::vector<double> busy = {1.0, 2.0, 1.0};
  // load_a: [0,1). comp: [1,3) releasing the token at 3. load_b: [3,4).
  const double t = tg.ScheduleSeconds(busy);
  EXPECT_DOUBLE_EQ(t, 4.0);
  // Pure function of graph + durations: identical on re-evaluation.
  EXPECT_DOUBLE_EQ(tg.ScheduleSeconds(busy), t);
  // Without the token bottleneck both loads would pipeline on resource 0:
  // the model is genuinely sensitive to pool capacity.
  TaskGraph tg2(TaskGraph::Options{/*num_workers=*/2});
  const auto pool2 = tg2.AddTokenPool(2);
  TaskGraph::NodeOptions la2 = la;
  la2.acquires = pool2;
  const auto a2 = tg2.AddNode(
      [](const TaskGraph::NodeContext&) { return Status::OK(); }, la2);
  TaskGraph::NodeOptions co2 = co;
  co2.releases_token_of = a2;
  const auto c2 = tg2.AddNode(
      [](const TaskGraph::NodeContext&) { return Status::OK(); }, co2);
  tg2.AddEdge(a2, c2);
  TaskGraph::NodeOptions lb2 = lb;
  lb2.acquires = pool2;
  tg2.AddNode([](const TaskGraph::NodeContext&) { return Status::OK(); },
              lb2);
  ASSERT_TRUE(tg2.Run().ok());
  EXPECT_DOUBLE_EQ(tg2.ScheduleSeconds(busy), 3.0);
}

// ---- Task-graph vs serial epoch equivalence --------------------------------

Dataset SmallDataset(const char* name = "reddit", double scale = 0.15) {
  auto r = LoadDatasetScaled(name, scale);
  EXPECT_TRUE(r.ok());
  return r.MoveValueUnsafe();
}

HongTuOptions BaseOptions(DedupLevel level, int chunks, ExecutorKind ex,
                          int inflight = 3) {
  HongTuOptions o;
  o.num_devices = 4;
  o.device_capacity_bytes = kBig;
  o.chunks_per_partition = chunks;
  o.dedup = level;
  o.executor = ex;
  o.max_inflight = inflight;
  return o;
}

class TaskGraphEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<GnnKind, DedupLevel, int>> {};

TEST_P(TaskGraphEquivalenceTest, TaskGraphMatchesSerial) {
  const auto& [kind, level, chunks] = GetParam();
  Dataset ds = SmallDataset();
  ModelConfig cfg =
      ModelConfig::Make(kind, ds.feature_dim(), 16, ds.num_classes, 2, 99);

  auto serial = HongTuEngine::Create(
      &ds, cfg, BaseOptions(level, chunks, ExecutorKind::kSerial));
  auto tasked = HongTuEngine::Create(
      &ds, cfg, BaseOptions(level, chunks, ExecutorKind::kTaskGraph));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(tasked.ok()) << tasked.status().ToString();
  auto& se = *serial.ValueOrDie();
  auto& te = *tasked.ValueOrDie();

  for (int epoch = 0; epoch < 2; ++epoch) {
    auto a = se.TrainEpoch();
    auto b = te.TrainEpoch();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    // The graph's comp/store chains pin every fp32 accumulation to the
    // serial visitation order, so the match is bitwise, not approximate.
    EXPECT_EQ(a.ValueOrDie().loss, b.ValueOrDie().loss) << "epoch " << epoch;
    EXPECT_EQ(a.ValueOrDie().train_accuracy, b.ValueOrDie().train_accuracy)
        << "epoch " << epoch;
    // A clean run must not have fallen back to the serial replay — that
    // would make this equivalence vacuous.
    EXPECT_EQ(b.ValueOrDie().recovery.total(), 0)
        << b.ValueOrDie().recovery.ToString();
  }
  auto pa = se.model()->AllParams();
  auto pb = te.model()->AllParams();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(Tensor::MaxAbsDiff(*pa[i], *pb[i]), 0.0f) << "param " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsLevelsChunks, TaskGraphEquivalenceTest,
    ::testing::Combine(::testing::Values(GnnKind::kGcn, GnnKind::kSage,
                                         GnnKind::kGin, GnnKind::kGat,
                                         GnnKind::kGgnn),
                       ::testing::Values(DedupLevel::kNone, DedupLevel::kP2P,
                                         DedupLevel::kP2PReuse),
                       ::testing::Values(1, 3, 8)));

TEST(HongTuTaskGraph, ReportsOverlapAndBeatsSerialSimTime) {
  Dataset ds = SmallDataset("it-2004", 0.2);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 32,
                                      ds.num_classes, 2, 11);
  auto serial = HongTuEngine::Create(
      &ds, cfg, BaseOptions(DedupLevel::kP2PReuse, 8, ExecutorKind::kSerial));
  auto tasked = HongTuEngine::Create(
      &ds, cfg,
      BaseOptions(DedupLevel::kP2PReuse, 8, ExecutorKind::kTaskGraph));
  ASSERT_TRUE(serial.ok() && tasked.ok());
  auto a = serial.ValueOrDie()->TrainEpoch();
  auto b = tasked.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(a.ok() && b.ok());
  const EpochStats& sa = a.ValueOrDie();
  const EpochStats& sb = b.ValueOrDie();
  EXPECT_DOUBLE_EQ(sa.time.overlapped, 0.0);
  EXPECT_GT(sb.time.overlapped, 0.0);
  EXPECT_LT(sb.time.total(), sb.time.busy());
  EXPECT_LT(sb.SimSeconds(), sa.SimSeconds());
  // Busy seconds (the Fig. 9 stacks) stay comparable across executors.
  EXPECT_NEAR(sa.time.busy(), sb.time.busy(), 0.15 * sa.time.busy());
}

TEST(HongTuTaskGraph, BeatsOrTiesThePipelineAtEqualWindow) {
  // The acceptance direction of this redesign: with the same in-flight
  // window the dataflow graph's cross-layer edges release work the stage
  // pipeline's per-layer barrier serializes, so its modeled epoch time is
  // no worse (small tolerance for schedule rounding).
  Dataset ds = SmallDataset("it-2004", 0.2);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 32,
                                      ds.num_classes, 3, 11);
  auto piped = HongTuEngine::Create(
      &ds, cfg,
      BaseOptions(DedupLevel::kP2PReuse, 8, ExecutorKind::kPipeline, 3));
  auto tasked = HongTuEngine::Create(
      &ds, cfg,
      BaseOptions(DedupLevel::kP2PReuse, 8, ExecutorKind::kTaskGraph, 3));
  ASSERT_TRUE(piped.ok() && tasked.ok());
  auto a = piped.ValueOrDie()->TrainEpoch();
  auto b = tasked.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LE(b.ValueOrDie().SimSeconds(),
            1.02 * a.ValueOrDie().SimSeconds());
}

TEST(HongTuTaskGraph, TaskGraphCostsDeviceMemory) {
  // Extra in-flight buffer slots must be visible to the memory model: the
  // token-pool capacity is exactly the num_slots BeginLayerCtx charged.
  Dataset ds = SmallDataset();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 7);
  auto serial = HongTuEngine::Create(
      &ds, cfg, BaseOptions(DedupLevel::kP2PReuse, 4, ExecutorKind::kSerial));
  auto tasked = HongTuEngine::Create(
      &ds, cfg,
      BaseOptions(DedupLevel::kP2PReuse, 4, ExecutorKind::kTaskGraph));
  ASSERT_TRUE(serial.ok() && tasked.ok());
  auto a = serial.ValueOrDie()->TrainEpoch();
  auto b = tasked.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b.ValueOrDie().peak_device_bytes,
            a.ValueOrDie().peak_device_bytes);
}

TEST(HongTuTaskGraph, FallsBackToSerialWhenGraphDoesNotFit) {
  // Tight devices: the pass-wide slot reservation may not fit, but the
  // epoch must still complete via the serial fallback rather than OOM.
  Dataset ds = SmallDataset("it-2004", 0.2);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 32,
                                      ds.num_classes, 3, 1);
  HongTuOptions o =
      BaseOptions(DedupLevel::kP2PReuse, 16, ExecutorKind::kTaskGraph, 4);
  o.device_capacity_bytes = 6ll << 20;
  auto e = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok());
  auto r = e.ValueOrDie()->TrainEpoch();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(HongTuTaskGraph, StragglerFaultDegradesWithCleanNumerics) {
  // A transient fault at the shared `pipeline.stage` site (poked before
  // every task-graph node body) poisons the graph; the engine replays the
  // pass serially and the losses stay bitwise equal to a clean run.
  Dataset ds = SmallDataset();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 321);
  const HongTuOptions o =
      BaseOptions(DedupLevel::kP2PReuse, 4, ExecutorKind::kTaskGraph);

  std::vector<double> clean;
  {
    auto e = HongTuEngine::Create(&ds, cfg, o);
    ASSERT_TRUE(e.ok());
    for (int k = 0; k < 3; ++k) {
      auto r = e.ValueOrDie()->TrainEpoch();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      clean.push_back(r.ValueOrDie().loss);
    }
  }

  fault::SiteSpec spec;
  spec.kind = fault::Kind::kTransient;
  spec.prob = 1.0;
  spec.seed = 3;
  spec.max_count = 2;
  ASSERT_TRUE(fault::Arm(fault::Site::kPipelineStage, spec).ok());
  fault::RecoveryCounters recovery;
  std::vector<double> faulted;
  {
    auto e = HongTuEngine::Create(&ds, cfg, o);
    ASSERT_TRUE(e.ok());
    for (int k = 0; k < 3; ++k) {
      auto r = e.ValueOrDie()->TrainEpoch();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      faulted.push_back(r.ValueOrDie().loss);
      for (int i = 0; i < fault::kNumDegradeEvents; ++i) {
        recovery.counts[i] += r.ValueOrDie().recovery.counts[i];
      }
    }
  }
  fault::DisarmAll();

  ASSERT_EQ(clean.size(), faulted.size());
  for (size_t k = 0; k < clean.size(); ++k) {
    EXPECT_EQ(clean[k], faulted[k]) << "epoch " << k;
  }
  EXPECT_GT(recovery[fault::DegradeEvent::kPipelineReplay], 0)
      << recovery.ToString();
}

TEST(HongTuTaskGraph, DeprecatedPipelineDepthAliasStillGovernsExecutor) {
  // pipeline_depth >= 2 must keep meaning "stage pipeline with that window"
  // even when executor fields say otherwise by default.
  HongTuOptions o;
  o.pipeline_depth = 4;
  EXPECT_EQ(o.resolved_executor(), ExecutorKind::kPipeline);
  EXPECT_EQ(o.resolved_max_inflight(), 4);
  o.pipeline_depth = 0;
  EXPECT_EQ(o.resolved_executor(), ExecutorKind::kSerial);
  o.pipeline_depth = 1;
  EXPECT_EQ(o.resolved_executor(), ExecutorKind::kSerial);
  o.pipeline_depth = -1;  // unset: the executor/max_inflight pair governs
  o.executor = ExecutorKind::kTaskGraph;
  o.max_inflight = 5;
  EXPECT_EQ(o.resolved_executor(), ExecutorKind::kTaskGraph);
  EXPECT_EQ(o.resolved_max_inflight(), 5);
}

}  // namespace
}  // namespace hongtu
