// Unit tests for hongtu/common: Status/Result, logging, RNG, parallel
// helpers, and formatting.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "hongtu/common/format.h"
#include "hongtu/common/logging.h"
#include "hongtu/common/parallel.h"
#include "hongtu/common/random.h"
#include "hongtu/common/status.h"

namespace hongtu {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::OutOfMemory("device 2 full");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(st.message(), "device 2 full");
  EXPECT_EQ(st.ToString(), "OutOfMemory: device 2 full");
}

TEST(Status, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::Invalid("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(Status, CopySharesState) {
  Status a = Status::Invalid("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(a == b);
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfMemory), "OutOfMemory");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::Invalid("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  HT_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_TRUE(UseReturnIfError(-1).IsInvalid());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  HT_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusMacros, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseAssignOrReturn(3, &out).IsInvalid());
}

TEST(ResultT, HoldsValue) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), "hello");
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultT, HoldsError) {
  Result<std::string> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultT, MoveValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto p = r.MoveValueUnsafe();
  EXPECT_EQ(*p, 7);
}

TEST(Logging, LevelFilterRoundTrips) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  HT_LOG(INFO) << "should be suppressed";
  SetLogLevel(prev);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextIntInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextInt(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng r(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Parallel, ForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(5000);
  ParallelFor(0, 5000, [&](int64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ChunkedCoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(5000);
  ParallelForChunked(0, 5000, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  ParallelForChunked(5, 5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SmallRangeRunsSerially) {
  std::vector<int> hits(10, 0);
  ParallelFor(0, 10, [&](int64_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Format, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512.0B");
  EXPECT_EQ(FormatBytes(1536), "1.5KB");
  EXPECT_EQ(FormatBytes(12.0 * (1ll << 30)), "12.0GB");
}

TEST(Format, Count) {
  EXPECT_EQ(FormatCount(950), "950");
  EXPECT_EQ(FormatCount(1234567), "1.23M");
  EXPECT_EQ(FormatCount(2.5e9), "2.50B");
}

TEST(Format, Seconds) {
  EXPECT_EQ(FormatSeconds(0.123), "123.0ms");
  EXPECT_EQ(FormatSeconds(0.0005), "500us");
  EXPECT_EQ(FormatSeconds(4.5), "4.50s");
  EXPECT_EQ(FormatSeconds(125), "2m05s");
}

TEST(Format, FixedPoint) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(10.0, 0), "10");
}

}  // namespace
}  // namespace hongtu
