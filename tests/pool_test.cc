// Tests for the arena-backed tensor pool (tensor/pool.h) and its contract
// with Tensor: bucket reuse, 64-byte alignment, uninitialized-vs-zeroed
// semantics, concurrent borrow/return from the three pipeline lanes, and the
// engine-level guarantee the tentpole is about — after the first epoch the
// HongTu chunk loops perform ZERO heap allocations, proven via the pool's
// hit/miss counters across pipeline depths {0, 2, 3}.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "hongtu/common/fault.h"
#include "hongtu/engine/hongtu_engine.h"
#include "hongtu/engine/inmemory_engine.h"
#include "hongtu/tensor/pool.h"
#include "hongtu/tensor/tensor.h"

namespace hongtu {
namespace {

constexpr int64_t kBig = 1ll << 40;

/// Pins the pool's enabled state for one test (the suite must behave the
/// same under HONGTU_DISABLE_POOL=1, where tests asserting pooled behavior
/// would otherwise see the escape-hatch semantics).
class ScopedPoolEnabled {
 public:
  explicit ScopedPoolEnabled(bool on)
      : saved_(TensorPool::Global().enabled()) {
    TensorPool::Global().SetEnabled(on);
  }
  ~ScopedPoolEnabled() { TensorPool::Global().SetEnabled(saved_); }

 private:
  bool saved_;
};

TEST(TensorPool, BucketRounding) {
  // <= 16 floats share the single 64 B bucket.
  EXPECT_EQ(TensorPool::BucketFloats(1), 16);
  EXPECT_EQ(TensorPool::BucketFloats(16), 16);
  // Multiples of the granule are their own class.
  EXPECT_EQ(TensorPool::BucketFloats(17), 32);
  EXPECT_EQ(TensorPool::BucketFloats(96), 96);
  // Above 128 the granule is next_pow2/8: waste stays under 12.5%.
  EXPECT_EQ(TensorPool::BucketFloats(1000), 1024);
  EXPECT_EQ(TensorPool::BucketFloats(1025), 1152);
  for (int64_t n : {7ll, 100ll, 999ll, 4097ll, 1000000ll}) {
    const int64_t b = TensorPool::BucketFloats(n);
    EXPECT_GE(b, n);
    EXPECT_LE(static_cast<double>(b), 1.125 * static_cast<double>(n) + 16);
    EXPECT_EQ(b % 16, 0) << "bucket must stay 64-byte aligned in size";
  }
  EXPECT_EQ(TensorPool::BucketFloats(0), 0);
}

TEST(TensorPool, BucketReuseIsAHit) {
  ScopedPoolEnabled scope(true);
  TensorPool& pool = TensorPool::Global();
  const PoolStats before = pool.stats();
  int64_t cap = 0;
  float* p = pool.Acquire(1000, &cap);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(cap, TensorPool::BucketFloats(1000));
  pool.Release(p, cap);
  // Same class again (1010 rounds to the same bucket): must come back from
  // the free list — same pointer, hit counter bumped, no new heap bytes.
  int64_t cap2 = 0;
  float* q = pool.Acquire(1010, &cap2);
  EXPECT_EQ(q, p);
  EXPECT_EQ(cap2, cap);
  pool.Release(q, cap2);
  const PoolStats after = pool.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses + 1);
}

TEST(TensorPool, SixtyFourByteAlignment) {
  for (int64_t n : {1ll, 5ll, 16ll, 100ll, 4096ll, 100000ll}) {
    Tensor t = Tensor::Uninitialized(n, 1);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % 64, 0u)
        << "rows=" << n;
  }
  Tensor z(37, 3);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(z.data()) % 64, 0u);
}

TEST(TensorPool, ZeroedTensorIsCleanAfterDirtyReuse) {
  ScopedPoolEnabled scope(true);
  // Dirty a buffer, return it to the pool, and re-acquire its class through
  // both constructors: Zeros must scrub it, Uninitialized must not pay for
  // a fill (we can only assert the zeroed half — stale contents of the
  // uninitialized path are unspecified).
  const int64_t rows = 123, cols = 7;
  {
    Tensor dirty = Tensor::Uninitialized(rows, cols);
    dirty.Fill(42.0f);
  }
  Tensor clean(rows, cols);
  for (int64_t i = 0; i < clean.size(); ++i) {
    ASSERT_EQ(clean.data()[i], 0.0f) << "index " << i;
  }
}

TEST(TensorPool, EnsureShapeReusesCapacity) {
  ScopedPoolEnabled scope(true);
  TensorPool& pool = TensorPool::Global();
  Tensor t = Tensor::Uninitialized(100, 32);
  const float* p = t.data();
  const PoolStats before = pool.stats();
  // Shrinking and regrowing within capacity must not touch the pool.
  t.EnsureShape(10, 32);
  t.EnsureShape(0, 32);
  t.EnsureShape(100, 32);
  EXPECT_EQ(t.data(), p);
  const PoolStats after = pool.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(TensorPool, ViewsDoNotOwnOrRelease) {
  Tensor t = Tensor::Uninitialized(8, 4);
  t.Fill(3.0f);
  Tensor v = Tensor::View(t);
  EXPECT_FALSE(v.owns_data());
  EXPECT_EQ(v.data(), t.data());
  Tensor slice = t.RowSlice(2, 3);
  EXPECT_EQ(slice.rows(), 3);
  EXPECT_EQ(slice.data(), t.row(2));
  // Moving a view transfers the alias; destroying it releases nothing.
  Tensor moved = std::move(v);
  EXPECT_EQ(moved.data(), t.data());
  { Tensor dies = std::move(moved); }
  EXPECT_EQ(t.at(0, 0), 3.0f);
  // Clone of a view is a deep, owning copy.
  Tensor c = slice.Clone();
  EXPECT_TRUE(c.owns_data());
  c.at(0, 0) = -1.0f;
  EXPECT_EQ(t.at(2, 0), 3.0f);
}

TEST(TensorPool, ConcurrentBorrowReturnThreeLanes) {
  // The pipelined executor's three stage lanes hammer the pool
  // concurrently; run the same pattern raw. TSan-clean by construction
  // (every pool op is under the pool mutex).
  ScopedPoolEnabled scope(true);
  TensorPool& pool = TensorPool::Global();
  const PoolStats before = pool.stats();
  constexpr int kIters = 2000;
  std::vector<std::thread> lanes;
  for (int lane = 0; lane < 3; ++lane) {
    lanes.emplace_back([lane] {
      for (int it = 0; it < kIters; ++it) {
        const int64_t n = 64 + 16 * ((lane + it) % 7);
        Tensor t = Tensor::Uninitialized(n, 8);
        t.data()[0] = static_cast<float>(lane);
        t.data()[t.size() - 1] = static_cast<float>(it);
        Tensor z(16, 4);
        ASSERT_EQ(z.at(0, 0), 0.0f);
      }
    });
  }
  for (auto& th : lanes) th.join();
  const PoolStats after = pool.stats();
  // Everything was returned.
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  // The overwhelming majority of the 3 x 2 x kIters acquires were hits.
  EXPECT_GE(after.hits - before.hits, 3 * 2 * kIters - 64);
}

TEST(TensorPool, DisabledModeStillMetersAndFrees) {
  TensorPool& pool = TensorPool::Global();
  ScopedPoolEnabled disabled(false);
  const PoolStats base = pool.stats();
  {
    Tensor t = Tensor::Uninitialized(500, 10);
    // Escape-hatch semantics: the buffer is freshly heap-allocated and
    // zero-filled like the pre-pool constructor.
    for (int64_t i = 0; i < t.size(); ++i) ASSERT_EQ(t.data()[i], 0.0f);
    const PoolStats during = pool.stats();
    EXPECT_EQ(during.misses, base.misses + 1);
    EXPECT_GT(during.live_bytes, base.live_bytes);
  }
  const PoolStats after = pool.stats();
  EXPECT_EQ(after.live_bytes, base.live_bytes);
  EXPECT_EQ(after.cached_bytes, 0);  // nothing parked while disabled
  {
    // Re-enabled: round trips park and reuse again.
    ScopedPoolEnabled enabled(true);
    { Tensor t = Tensor::Uninitialized(500, 10); }
    const PoolStats s1 = pool.stats();
    { Tensor t = Tensor::Uninitialized(500, 10); }
    EXPECT_EQ(pool.stats().hits, s1.hits + 1);
  }
}

// ---- Engine-level steady-state guarantee ----------------------------------

Dataset PoolDataset() {
  auto r = LoadDatasetScaled("reddit", 0.2);
  EXPECT_TRUE(r.ok());
  return r.MoveValueUnsafe();
}

class ZeroAllocTest : public ::testing::TestWithParam<int> {};

TEST_P(ZeroAllocTest, NoHeapAllocationsAfterFirstEpoch) {
  ScopedPoolEnabled scope(true);
  const int depth = GetParam();
  Dataset ds = PoolDataset();
  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kGat}) {
    ModelConfig cfg =
        ModelConfig::Make(kind, ds.feature_dim(), 16, ds.num_classes, 2, 99);
    HongTuOptions o;
    o.num_devices = 4;
    o.chunks_per_partition = 4;
    o.device_capacity_bytes = kBig;
    o.pipeline_depth = depth;
    auto e = HongTuEngine::Create(&ds, cfg, o);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    // Epoch 1 may miss while buckets fill (pre-sized workspaces keep the
    // engine's own loops clean; layer-internal scratch warms up here).
    auto warm = e.ValueOrDie()->TrainEpoch();
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    // Steady state: the chunk loops must not touch the heap at all.
    for (int epoch = 2; epoch <= 3; ++epoch) {
      auto r = e.ValueOrDie()->TrainEpoch();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r.ValueOrDie().host_alloc_count, 0)
          << GnnKindName(kind) << " depth=" << depth << " epoch=" << epoch;
      EXPECT_GT(r.ValueOrDie().host_pool_hits, 0);
      EXPECT_GT(r.ValueOrDie().host_peak_bytes, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, ZeroAllocTest, ::testing::Values(0, 2, 3));

TEST(ZeroAllocTaskGraph, TaskGraphExecutorStaysNearlyAllocationFree) {
  // The dataflow executor cycles every buffer slot through the token pool
  // during epoch 1, so by steady state all S slot workspaces and both layer
  // contexts are warm. Unlike the fixed-role stage pipeline, work stealing
  // makes kernel-scratch concurrency nondeterministic: an epoch may
  // transiently hold one more buffer of a size class than any earlier epoch
  // did, so the steady state is *nearly* allocation-free — a residue bounded
  // by the worker count (a worker can hold at most one scratch buffer per
  // size class beyond the warm set), with pool hits doing the real serving.
  ScopedPoolEnabled scope(true);
  Dataset ds = PoolDataset();
  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kGat}) {
    ModelConfig cfg =
        ModelConfig::Make(kind, ds.feature_dim(), 16, ds.num_classes, 2, 99);
    HongTuOptions o;
    o.num_devices = 4;
    o.chunks_per_partition = 4;
    o.device_capacity_bytes = kBig;
    o.executor = ExecutorKind::kTaskGraph;
    o.max_inflight = 3;
    auto e = HongTuEngine::Create(&ds, cfg, o);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    auto warm = e.ValueOrDie()->TrainEpoch();
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    for (int epoch = 2; epoch <= 3; ++epoch) {
      auto r = e.ValueOrDie()->TrainEpoch();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      const int64_t residue_bound =
          8 + 4 * static_cast<int64_t>(std::thread::hardware_concurrency());
      EXPECT_LE(r.ValueOrDie().host_alloc_count, residue_bound)
          << GnnKindName(kind) << " epoch=" << epoch;
      EXPECT_GT(r.ValueOrDie().host_pool_hits,
                r.ValueOrDie().host_alloc_count)
          << GnnKindName(kind) << " epoch=" << epoch;
    }
  }
}

TEST(ZeroAllocCompressed, Bf16CommStaysAllocationFree) {
  // The mixed-precision wire reshapes the executor's transition buffers to
  // the packed width; steady-state epochs must stay off the heap exactly
  // like the fp32 path (the codec kernels allocate nothing).
  ScopedPoolEnabled scope(true);
  Dataset ds = PoolDataset();
  for (const int depth : {0, 3}) {
    ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                        ds.num_classes, 2, 99);
    HongTuOptions o;
    o.num_devices = 4;
    o.chunks_per_partition = 4;
    o.device_capacity_bytes = kBig;
    o.pipeline_depth = depth;
    o.comm_precision = kernels::CommPrecision::kBf16;
    auto e = HongTuEngine::Create(&ds, cfg, o);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    ASSERT_TRUE(e.ValueOrDie()->TrainEpoch().ok());
    for (int epoch = 2; epoch <= 3; ++epoch) {
      auto r = e.ValueOrDie()->TrainEpoch();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r.ValueOrDie().host_alloc_count, 0)
          << "depth=" << depth << " epoch=" << epoch;
      EXPECT_GT(r.ValueOrDie().host_pool_hits, 0);
    }
  }
}

TEST(ZeroAllocArmed, ArmedButUnfiredSitesKeepSteadyStateAllocationFree) {
  // Arming the fault registry switches every Poke from the relaxed-load
  // fast path onto the locked bookkeeping path. That path must not
  // allocate: with sites armed at probability 0 (checked every batch, never
  // firing) the steady-state zero-allocation guarantee has to hold exactly
  // as in the disarmed suite.
  ScopedPoolEnabled scope(true);
  Dataset ds = PoolDataset();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 99);
  HongTuOptions o;
  o.num_devices = 4;
  o.chunks_per_partition = 4;
  o.device_capacity_bytes = kBig;
  auto e = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  ASSERT_TRUE(e.ValueOrDie()->TrainEpoch().ok());

  fault::SiteSpec idle;
  idle.kind = fault::Kind::kTransient;
  idle.prob = 0.0;
  for (fault::Site site :
       {fault::Site::kPoolAlloc, fault::Site::kCommFetch,
        fault::Site::kCommFlush, fault::Site::kDeviceH2D,
        fault::Site::kPipelineStage}) {
    ASSERT_TRUE(fault::Arm(site, idle).ok());
  }
  ASSERT_TRUE(fault::Armed());
  for (int epoch = 2; epoch <= 3; ++epoch) {
    auto r = e.ValueOrDie()->TrainEpoch();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie().host_alloc_count, 0) << "epoch " << epoch;
    EXPECT_EQ(r.ValueOrDie().recovery.total(), 0);
  }
  // The armed sites were really consulted — the guarantee covered the
  // locked path, not an unvisited one.
  EXPECT_GT(fault::StatsFor(fault::Site::kCommFetch).checks, 0);
  fault::DisarmAll();
}

TEST(TensorPoolEngine, PooledMatchesUnpooledNumerics) {
  // HONGTU_DISABLE_POOL A/B: the pool must be numerically invisible across
  // all five layer types (<= 1e-4; in fact the arithmetic is identical).
  Dataset ds = PoolDataset();
  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kSage, GnnKind::kGin,
                       GnnKind::kGat, GnnKind::kGgnn}) {
    ModelConfig cfg =
        ModelConfig::Make(kind, ds.feature_dim(), 16, ds.num_classes, 2, 7);
    HongTuOptions o;
    o.num_devices = 4;
    o.chunks_per_partition = 3;
    o.device_capacity_bytes = kBig;
    const auto run = [&](bool pooled) {
      ScopedPoolEnabled scope(pooled);
      auto e = HongTuEngine::Create(&ds, cfg, o);
      EXPECT_TRUE(e.ok());
      std::vector<double> losses;
      for (int epoch = 0; epoch < 2; ++epoch) {
        auto r = e.ValueOrDie()->TrainEpoch();
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        losses.push_back(r.ValueOrDie().loss);
      }
      std::vector<Tensor> params;
      for (Tensor* p : e.ValueOrDie()->model()->AllParams()) {
        params.push_back(p->Clone());
      }
      return std::make_pair(losses, std::move(params));
    };
    auto [loss_on, params_on] = run(true);
    auto [loss_off, params_off] = run(false);
    for (size_t i = 0; i < loss_on.size(); ++i) {
      EXPECT_NEAR(loss_on[i], loss_off[i], 1e-4) << GnnKindName(kind);
    }
    ASSERT_EQ(params_on.size(), params_off.size());
    for (size_t i = 0; i < params_on.size(); ++i) {
      EXPECT_LE(Tensor::MaxAbsDiff(params_on[i], params_off[i]), 1e-4)
          << GnnKindName(kind) << " param " << i;
    }
  }
}

TEST(TensorPoolEngine, EpochStatsExposePoolCounters) {
  Dataset ds = PoolDataset();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 5);
  InMemoryOptions o;
  o.num_devices = 1;
  o.device_capacity_bytes = kBig;
  auto e = InMemoryEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok());
  auto r = e.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.ValueOrDie().host_peak_bytes, 0);
}

}  // namespace
}  // namespace hongtu
