// Engine tests. The centerpiece is the equivalence suite: HongTuEngine
// (partitioned, offloaded, deduplicated, recompute/cache-hybrid) must match
// the dense single-shot InMemoryEngine reference to float tolerance — the
// paper's claim that its training semantics are unchanged (§7.1, Fig. 8).

#include <gtest/gtest.h>

#include <tuple>

#include "hongtu/engine/cpu_cluster_engine.h"
#include "hongtu/engine/hongtu_engine.h"
#include "hongtu/engine/inmemory_engine.h"
#include "hongtu/engine/minibatch_engine.h"
#include "hongtu/engine/trainer.h"

namespace hongtu {
namespace {

constexpr int64_t kBig = 1ll << 40;

Dataset SmallDataset(const char* name = "reddit", double scale = 0.2) {
  auto r = LoadDatasetScaled(name, scale);
  EXPECT_TRUE(r.ok());
  return r.MoveValueUnsafe();
}

class EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<GnnKind, DedupLevel, int>> {};

TEST_P(EquivalenceTest, HongTuMatchesDenseReference) {
  const auto& [kind, level, chunks] = GetParam();
  Dataset ds = SmallDataset();
  ModelConfig cfg =
      ModelConfig::Make(kind, ds.feature_dim(), 16, ds.num_classes, 2, 777);

  InMemoryOptions imo;
  imo.num_devices = 1;
  imo.device_capacity_bytes = kBig;
  auto refr = InMemoryEngine::Create(&ds, cfg, imo);
  ASSERT_TRUE(refr.ok()) << refr.status().ToString();
  auto& ref = *refr.ValueOrDie();

  HongTuOptions hto;
  hto.num_devices = 4;
  hto.device_capacity_bytes = kBig;
  hto.chunks_per_partition = chunks;
  hto.dedup = level;
  // This suite asserts the paper's unchanged-training-semantics claim, so
  // it pins the bit-exact wire even when HONGTU_COMM_PRECISION moves the
  // default (the CI bf16 leg); Bf16TrainingDrift below bounds the 16-bit
  // wire against fp32 explicitly.
  hto.comm_precision = kernels::CommPrecision::kFp32;
  auto htr = HongTuEngine::Create(&ds, cfg, hto);
  ASSERT_TRUE(htr.ok()) << htr.status().ToString();
  auto& ht = *htr.ValueOrDie();

  for (int epoch = 0; epoch < 3; ++epoch) {
    auto a = ref.TrainEpoch();
    auto b = ht.TrainEpoch();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_NEAR(a.ValueOrDie().loss, b.ValueOrDie().loss,
                2e-3 * std::max(1.0, a.ValueOrDie().loss))
        << "epoch " << epoch;
  }
  // Parameters stay in lockstep as well.
  auto pa = ref.model()->AllParams();
  auto pb = ht.model()->AllParams();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(Tensor::MaxAbsDiff(*pa[i], *pb[i]), 5e-2) << "param " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsLevelsChunks, EquivalenceTest,
    ::testing::Combine(::testing::Values(GnnKind::kGcn, GnnKind::kSage,
                                         GnnKind::kGin, GnnKind::kGat,
                                         GnnKind::kGgnn),
                       ::testing::Values(DedupLevel::kNone,
                                         DedupLevel::kP2PReuse),
                       ::testing::Values(1, 3)));

class Bf16DriftTest
    : public ::testing::TestWithParam<std::tuple<GnnKind, DedupLevel>> {};

TEST_P(Bf16DriftTest, TrainingLossStaysWithinTolerance) {
  // The mixed-precision wire quantizes every transferred row once per
  // crossing while all accumulation stays fp32, so end-to-end training-loss
  // drift vs the fp32 wire must stay within a few percent — for every layer
  // kind and dedup level (each level routes rows through different
  // load/reuse/flush paths).
  const auto& [kind, level] = GetParam();
  Dataset ds = SmallDataset();
  ModelConfig cfg =
      ModelConfig::Make(kind, ds.feature_dim(), 16, ds.num_classes, 2, 555);
  const auto run = [&](kernels::CommPrecision wire) {
    HongTuOptions o;
    o.num_devices = 4;
    o.chunks_per_partition = 3;
    o.device_capacity_bytes = kBig;
    o.dedup = level;
    o.comm_precision = wire;
    auto e = HongTuEngine::Create(&ds, cfg, o);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    std::vector<double> losses;
    for (int epoch = 0; epoch < 3; ++epoch) {
      auto r = e.ValueOrDie()->TrainEpoch();
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      losses.push_back(r.ValueOrDie().loss);
    }
    return losses;
  };
  const std::vector<double> fp32 = run(kernels::CommPrecision::kFp32);
  const std::vector<double> bf16 = run(kernels::CommPrecision::kBf16);
  ASSERT_EQ(fp32.size(), bf16.size());
  for (size_t e = 0; e < fp32.size(); ++e) {
    EXPECT_NEAR(bf16[e], fp32[e], 0.05 * std::max(1.0, fp32[e]))
        << GnnKindName(kind) << " epoch " << e;
  }
  // Training still makes progress under the compressed wire.
  EXPECT_LT(bf16.back(), bf16.front());
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndLevels, Bf16DriftTest,
    ::testing::Combine(::testing::Values(GnnKind::kGcn, GnnKind::kSage,
                                         GnnKind::kGin, GnnKind::kGat,
                                         GnnKind::kGgnn),
                       ::testing::Values(DedupLevel::kNone, DedupLevel::kP2P,
                                         DedupLevel::kP2PReuse)));

TEST(HongTuEngine, Fp16WireTrainsAndHalvesCommBytes) {
  // fp16's narrower range must still train on normalized features, and the
  // platform's byte meters must show the halved wire for both precisions.
  Dataset ds = SmallDataset();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 556);
  const auto run = [&](kernels::CommPrecision wire) {
    HongTuOptions o;
    o.num_devices = 4;
    o.chunks_per_partition = 3;
    o.device_capacity_bytes = kBig;
    o.comm_precision = wire;
    // Serial executor: epoch time is the sum of busy seconds, so the
    // halved wire must show up as a strict total-time drop (under overlap
    // a fully hidden comm lane could mask it).
    o.pipeline_depth = 0;
    auto e = HongTuEngine::Create(&ds, cfg, o);
    EXPECT_TRUE(e.ok());
    auto r = e.ValueOrDie()->TrainEpoch();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ValueOrDie();
  };
  const EpochStats f32 = run(kernels::CommPrecision::kFp32);
  const EpochStats f16 = run(kernels::CommPrecision::kFp16);
  const EpochStats b16 = run(kernels::CommPrecision::kBf16);
  EXPECT_NEAR(f16.loss, f32.loss, 0.05 * std::max(1.0, f32.loss));
  // Every comm stream moves vertex rows at the 2-byte wire: the h2d + ru
  // byte meters must drop by exactly 2x, and d2d likewise.
  EXPECT_EQ(f16.bytes.h2d * 2, f32.bytes.h2d);
  EXPECT_EQ(f16.bytes.ru * 2, f32.bytes.ru);
  EXPECT_EQ(f16.bytes.d2d, b16.bytes.d2d);
  EXPECT_GT(f32.bytes.d2d, f16.bytes.d2d);
  // Cheaper wire bytes must show up as sim-time savings on the h2d lane.
  EXPECT_LT(f16.SimSeconds(), f32.SimSeconds());
}

TEST(HongTuEngine, HybridCacheOffMatchesOn) {
  // Pure recomputation (Fig. 4b) and the hybrid (Fig. 4c) must agree. On a
  // heavily-replicated graph (alpha >> 2) the hybrid also transfers less:
  // caching costs 2|V| rows of host traffic (write + read) versus the
  // recompute path's alpha|V| neighbor reload (§4.2).
  Dataset ds = SmallDataset("friendster", 0.1);
  ModelConfig cfg =
      ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16, ds.num_classes,
                        2, 31);
  HongTuOptions a;
  a.num_devices = 4;
  a.chunks_per_partition = 8;
  a.device_capacity_bytes = kBig;
  a.hybrid_cache = true;
  HongTuOptions b = a;
  b.hybrid_cache = false;
  auto ea = HongTuEngine::Create(&ds, cfg, a);
  auto eb = HongTuEngine::Create(&ds, cfg, b);
  ASSERT_TRUE(ea.ok() && eb.ok());
  for (int epoch = 0; epoch < 2; ++epoch) {
    auto ra = ea.ValueOrDie()->TrainEpoch();
    auto rb = eb.ValueOrDie()->TrainEpoch();
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_NEAR(ra.ValueOrDie().loss, rb.ValueOrDie().loss, 1e-3);
  }
  // The O(alpha|V|) -> O(|V|) traffic claim of §4.2 is stated against plain
  // per-chunk loading, so compare the two policies with dedup disabled:
  // caching (2|V| rows) must beat the recompute reload (alpha|V| rows).
  HongTuOptions a2 = a;
  a2.dedup = DedupLevel::kNone;
  HongTuOptions b2 = b;
  b2.dedup = DedupLevel::kNone;
  auto ea2 = HongTuEngine::Create(&ds, cfg, a2);
  auto eb2 = HongTuEngine::Create(&ds, cfg, b2);
  ASSERT_TRUE(ea2.ok() && eb2.ok());
  auto ra = ea2.ValueOrDie()->TrainEpoch();
  auto rb = eb2.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_LT(ra.ValueOrDie().bytes.h2d, rb.ValueOrDie().bytes.h2d);
}

TEST(HongTuEngine, EdgeSchedulesAreMeteredAndOptional) {
  Dataset ds = SmallDataset("friendster", 0.1);
  ModelConfig cfg =
      ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16, ds.num_classes,
                        2, 31);
  HongTuOptions on;
  on.num_devices = 2;
  on.chunks_per_partition = 4;
  on.device_capacity_bytes = kBig;
  HongTuOptions off = on;
  off.edge_schedules = false;
  auto eon = HongTuEngine::Create(&ds, cfg, on);
  auto eoff = HongTuEngine::Create(&ds, cfg, off);
  ASSERT_TRUE(eon.ok() && eoff.ok());
  // The one-time schedule build cost is metered in the platform and charged
  // against device memory; disabling schedules meters nothing.
  EXPECT_GT(eon.ValueOrDie()->platform()->ScheduleBytes(), 0);
  EXPECT_EQ(eoff.ValueOrDie()->platform()->ScheduleBytes(), 0);
  // Numerics agree across the banded/single-pass dispatch.
  for (int epoch = 0; epoch < 2; ++epoch) {
    auto ra = eon.ValueOrDie()->TrainEpoch();
    auto rb = eoff.ValueOrDie()->TrainEpoch();
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_NEAR(ra.ValueOrDie().loss, rb.ValueOrDie().loss, 1e-3);
  }
}

TEST(HongTuEngine, ReorganizeKeepsNumericsChangesVolume) {
  Dataset ds = SmallDataset("friendster", 0.1);
  ModelConfig cfg =
      ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 8, ds.num_classes,
                        2, 13);
  HongTuOptions a;
  a.num_devices = 4;
  a.chunks_per_partition = 6;
  a.device_capacity_bytes = kBig;
  a.reorganize = true;
  HongTuOptions b = a;
  b.reorganize = false;
  auto ea = HongTuEngine::Create(&ds, cfg, a);
  auto eb = HongTuEngine::Create(&ds, cfg, b);
  ASSERT_TRUE(ea.ok() && eb.ok());
  auto ra = ea.ValueOrDie()->TrainEpoch();
  auto rb = eb.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_NEAR(ra.ValueOrDie().loss, rb.ValueOrDie().loss, 1e-3);
  EXPECT_LE(ea.ValueOrDie()->plan().volumes.v_ru,
            eb.ValueOrDie()->plan().volumes.v_ru);
}

TEST(HongTuEngine, DedupLevelsReduceHostTraffic) {
  // Fig. 9 ablation direction: Baseline > +P2P > +RU in H2D bytes.
  Dataset ds = SmallDataset("friendster", 0.1);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 8,
                                      ds.num_classes, 2, 13);
  int64_t prev = INT64_MAX;
  for (DedupLevel level :
       {DedupLevel::kNone, DedupLevel::kP2P, DedupLevel::kP2PReuse}) {
    HongTuOptions o;
    o.num_devices = 4;
    o.chunks_per_partition = 6;
    o.device_capacity_bytes = kBig;
    o.dedup = level;
    auto e = HongTuEngine::Create(&ds, cfg, o);
    ASSERT_TRUE(e.ok());
    auto r = e.ValueOrDie()->TrainEpoch();
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r.ValueOrDie().bytes.h2d, prev)
        << DedupLevelName(level);
    prev = r.ValueOrDie().bytes.h2d;
  }
}

TEST(HongTuEngine, RejectsDimMismatch) {
  Dataset ds = SmallDataset();
  ModelConfig cfg =
      ModelConfig::Make(GnnKind::kGcn, ds.feature_dim() + 1, 8,
                        ds.num_classes, 2, 1);
  HongTuOptions o;
  EXPECT_TRUE(HongTuEngine::Create(&ds, cfg, o).status().IsInvalid());
  EXPECT_TRUE(
      HongTuEngine::Create(nullptr, cfg, o).status().IsInvalid());
}

TEST(HongTuEngine, SingleDeviceSingleChunkWorks) {
  Dataset ds = SmallDataset();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 8,
                                      ds.num_classes, 2, 1);
  HongTuOptions o;
  o.num_devices = 1;
  o.chunks_per_partition = 1;
  o.device_capacity_bytes = kBig;
  auto e = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.ValueOrDie()->TrainEpoch().ok());
}

TEST(InMemoryEngine, OomOnTinyDevices) {
  Dataset ds = SmallDataset("it-2004", 0.2);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 32,
                                      ds.num_classes, 3, 1);
  InMemoryOptions o;
  o.num_devices = 4;
  o.device_capacity_bytes = 1 << 20;  // 1 MB devices
  auto e = InMemoryEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.ValueOrDie()->TrainEpoch().status().IsOutOfMemory());
}

TEST(HongTuEngine, FitsWhereInMemoryOoms) {
  // The paper's central claim (Table 6): with the same devices, HongTu
  // completes where the all-in-GPU engine runs out of memory.
  Dataset ds = SmallDataset("it-2004", 0.2);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 32,
                                      ds.num_classes, 3, 1);
  const int64_t cap = 6ll << 20;  // 6 MB per device
  InMemoryOptions imo;
  imo.num_devices = 4;
  imo.device_capacity_bytes = cap;
  auto im = InMemoryEngine::Create(&ds, cfg, imo);
  ASSERT_TRUE(im.ok());
  ASSERT_TRUE(im.ValueOrDie()->TrainEpoch().status().IsOutOfMemory());

  HongTuOptions hto;
  hto.num_devices = 4;
  hto.device_capacity_bytes = cap;
  hto.chunks_per_partition = 16;
  auto ht = HongTuEngine::Create(&ds, cfg, hto);
  ASSERT_TRUE(ht.ok());
  auto r = ht.ValueOrDie()->TrainEpoch();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(MiniBatchEngine, TrainsAndImprovesLoss) {
  Dataset ds = SmallDataset();
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 5);
  MiniBatchOptions o;
  o.num_devices = 4;
  o.device_capacity_bytes = kBig;
  o.batch_size = 256;
  auto e = MiniBatchEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok());
  auto first = e.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(first.ok());
  EpochStats last;
  for (int i = 0; i < 5; ++i) {
    auto r = e.ValueOrDie()->TrainEpoch();
    ASSERT_TRUE(r.ok());
    last = r.ValueOrDie();
  }
  EXPECT_LT(last.loss, first.ValueOrDie().loss);
  auto acc = e.ValueOrDie()->EvaluateAccuracy(SplitRole::kVal);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(acc.ValueOrDie(), 1.5 / ds.num_classes);
}

TEST(MiniBatchEngine, SampleChunkRespectsFanout) {
  Dataset ds = SmallDataset();
  Rng rng(3);
  std::vector<VertexId> dsts = {0, 5, 9, 14};
  Chunk c = SampleChunk(ds.graph, dsts, 4, &rng);
  ASSERT_EQ(c.num_dst(), 4);
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_LE(c.in_offsets[d + 1] - c.in_offsets[d], 4);
    // Self edge always kept.
    bool self = false;
    for (int64_t e = c.in_offsets[d]; e < c.in_offsets[d + 1]; ++e) {
      if (c.neighbors[c.nbr_idx[e]] == c.dst_vertices[d]) self = true;
    }
    EXPECT_TRUE(self);
  }
}

TEST(CpuClusterEngine, ScalesWithLayersAndOoms) {
  Dataset ds = SmallDataset("ogbn-paper", 0.3);
  CpuClusterOptions o;
  o.num_nodes = 16;
  o.node_memory_bytes = 1ll << 30;
  double prev = 0.0;
  for (int layers : {2, 3, 4}) {
    ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                        ds.num_classes, layers, 1);
    auto e = CpuClusterEngine::Create(&ds, cfg, o);
    ASSERT_TRUE(e.ok());
    auto r = e.ValueOrDie()->EstimateEpoch();
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.ValueOrDie().SimSeconds(), prev);
    prev = r.ValueOrDie().SimSeconds();
  }
  // Tiny node memory -> OOM.
  o.node_memory_bytes = 1 << 20;
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGat, ds.feature_dim(), 16,
                                      ds.num_classes, 4, 1);
  auto e = CpuClusterEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.ValueOrDie()->EstimateEpoch().status().IsOutOfMemory());
}

TEST(CpuClusterEngine, MoreNodesAreFaster) {
  Dataset ds = SmallDataset("it-2004", 0.3);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 1);
  CpuClusterOptions a;
  a.num_nodes = 4;
  CpuClusterOptions b;
  b.num_nodes = 16;
  auto ea = CpuClusterEngine::Create(&ds, cfg, a);
  auto eb = CpuClusterEngine::Create(&ds, cfg, b);
  ASSERT_TRUE(ea.ok() && eb.ok());
  auto ra = ea.ValueOrDie()->EstimateEpoch();
  auto rb = eb.ValueOrDie()->EstimateEpoch();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_GT(ra.ValueOrDie().time.cpu, rb.ValueOrDie().time.cpu);
}

TEST(Trainer, ReachesTargetAndStops) {
  Dataset ds = SmallDataset("reddit", 0.2);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 32,
                                      ds.num_classes, 2, 7);
  HongTuOptions o;
  o.num_devices = 2;
  o.chunks_per_partition = 2;
  o.device_capacity_bytes = kBig;
  auto e = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok());
  TrainerOptions to;
  to.max_epochs = 100;
  to.target_val_accuracy = 0.8;  // SBM labels are easily learnable
  to.eval_every = 5;
  auto r = TrainToConvergence(e.ValueOrDie().get(), to);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().reached_target);
  EXPECT_LT(r.ValueOrDie().epochs_run, 100);
  EXPECT_GE(r.ValueOrDie().best_val_accuracy, 0.8);
  EXPECT_GT(r.ValueOrDie().total_sim_seconds, 0);
  EXPECT_GT(r.ValueOrDie().MeanEpochSimSeconds(), 0);
}

TEST(Trainer, PatienceStopsOnPlateau) {
  Dataset ds = SmallDataset("it-2004", 0.05);  // random labels: no progress
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 8,
                                      ds.num_classes, 2, 7);
  HongTuOptions o;
  o.num_devices = 2;
  o.chunks_per_partition = 2;
  o.device_capacity_bytes = kBig;
  auto e = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok());
  TrainerOptions to;
  to.max_epochs = 200;
  to.patience = 2;
  to.eval_every = 2;
  auto r = TrainToConvergence(e.ValueOrDie().get(), to);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.ValueOrDie().early_stopped);
  EXPECT_LT(r.ValueOrDie().epochs_run, 200);
}

TEST(Trainer, RejectsBadOptions) {
  Dataset ds = SmallDataset("reddit", 0.1);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 8,
                                      ds.num_classes, 2, 7);
  HongTuOptions o;
  o.device_capacity_bytes = kBig;
  auto e = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok());
  TrainerOptions bad;
  bad.max_epochs = 0;
  EXPECT_TRUE(
      TrainToConvergence(e.ValueOrDie().get(), bad).status().IsInvalid());
  EXPECT_TRUE(TrainToConvergence<HongTuEngine>(nullptr, TrainerOptions())
                  .status()
                  .IsInvalid());
}

TEST(EpochStats, ComponentsPopulated) {
  Dataset ds = SmallDataset("it-2004", 0.1);
  ModelConfig cfg = ModelConfig::Make(GnnKind::kGcn, ds.feature_dim(), 16,
                                      ds.num_classes, 2, 3);
  HongTuOptions o;
  o.num_devices = 4;
  o.chunks_per_partition = 4;
  o.device_capacity_bytes = kBig;
  auto e = HongTuEngine::Create(&ds, cfg, o);
  ASSERT_TRUE(e.ok());
  auto r = e.ValueOrDie()->TrainEpoch();
  ASSERT_TRUE(r.ok());
  const EpochStats& st = r.ValueOrDie();
  EXPECT_GT(st.time.gpu, 0);
  EXPECT_GT(st.time.h2d, 0);
  EXPECT_GT(st.time.cpu, 0);
  EXPECT_GT(st.bytes.h2d, 0);
  EXPECT_GT(st.peak_device_bytes, 0);
  EXPECT_GT(st.wall_seconds, 0);
  EXPECT_GT(st.SimSeconds(), 0);
}

}  // namespace
}  // namespace hongtu
